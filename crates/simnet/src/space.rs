//! Deterministic sharded simulator: many registers over one simulated
//! cluster, driven interactively through the [`Driver`] interface.
//!
//! Where [`Simulation`](crate::Simulation) hosts the paper's single register
//! under scripted client plans, `SimSpace` hosts a whole
//! [`ShardSet`] per process — one automaton instance per register, wire
//! messages wrapped in [`Envelope`]s — and is driven one operation at a
//! time: [`Driver::invoke`] runs the invocation handler at the current
//! virtual instant, [`Driver::poll`] advances the delivery queue until the
//! operation completes. Runs are a deterministic function of the seed, like
//! every simulation in this workspace.
//!
//! The transport unit is the [`Frame`]: all envelopes staged on one ordered
//! link `(src, dst)` at the same virtual instant coalesce into a single
//! frame that crosses the network as one delivery event — one sampled
//! delay, one shared routing header, delivered atomically (all messages or,
//! when the destination crashed, none). Per-message control/data bits are
//! unchanged by framing; the routing saving is visible in
//! [`NetStats::frame_header_bits`](twobit_proto::NetStats::frame_header_bits)
//! versus the per-message figure in
//! [`NetStats::routing_bits`](twobit_proto::NetStats::routing_bits).
//!
//! # Examples
//!
//! ```
//! use twobit_proto::{Driver, ProcessId, RegisterId, SystemConfig};
//! use twobit_simnet::SpaceBuilder;
//! # use twobit_simnet::testutil::NullRegister;
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let mut space = SpaceBuilder::new(cfg)
//!     .seed(7)
//!     .registers(8)
//!     .build(0u64, |_reg, id| NullRegister::new(id, cfg));
//! let p0 = ProcessId::new(0);
//! space.write(p0, RegisterId::new(3), 42)?;
//! assert_eq!(space.read(p0, RegisterId::new(3))?, 42);
//! assert_eq!(space.history().len(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::SeedableRng;

use twobit_proto::{
    Automaton, Driver, DriverError, Effects, Envelope, FlushReason, Frame, NetStats, OpId,
    OpOutcome, OpRecord, OpTicket, Operation, ProcessId, RegisterId, ShardSet, ShardedHistory,
    SystemConfig, WireMessage,
};

use crate::delay::DelayModel;
use crate::SimTime;

/// How long a staged link waits for company before flushing, in virtual
/// ticks — the engine-side counterpart of the runtime links'
/// `HoldPolicy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VirtualHold {
    /// A fixed hold window (0 coalesces exactly the sends of one virtual
    /// instant — the historical `flush_hold` behaviour).
    Static(SimTime),
    /// Auto-tune the hold between `floor` and `ceil` from the link's
    /// observed (EWMA) inter-arrival gap in virtual ticks: an idle link
    /// flushes after `floor`, a busy link holds toward `ceil` so staggered
    /// operations coalesce. The same idle/busy EWMA rule as the live
    /// runtime's adaptive `FlushPolicy`, with one deliberate difference:
    /// the virtual engine has no `max_batch` size bound, so a busy link's
    /// hold stretches toward a fixed few arrivals' worth
    /// (`VIRTUAL_GAP_MULTIPLIER` × gap, clamped by `ceil`) instead of the
    /// live batcher's time-to-fill-a-batch (`gap × max_batch`).
    Adaptive {
        /// Minimum hold, applied when the link looks idle.
        floor: SimTime,
        /// Maximum hold, approached as the link gets bursty; also the
        /// idleness threshold (an EWMA gap at or beyond `ceil` means the
        /// next arrival is not worth waiting for).
        ceil: SimTime,
    },
}

impl VirtualHold {
    fn validate(&self) {
        if let VirtualHold::Adaptive { floor, ceil } = self {
            assert!(
                floor <= ceil,
                "adaptive virtual hold has floor {floor} above ceil {ceil}"
            );
        }
    }
}

/// Per-link adaptive state: the EWMA inter-arrival gap and the last
/// arrival instant, in virtual ticks (`None` before the link's first
/// arrival, matching the live batcher: one message is no evidence).
#[derive(Clone, Copy, Debug, Default)]
struct LinkGap {
    ewma: Option<SimTime>,
    last_arrival: Option<SimTime>,
}

/// How many arrivals' worth a busy adaptive link holds for, in the
/// absence of a size bound (the virtual engine frames whatever is staged
/// when the marker fires — there is no `max_batch` whose fill time the
/// hold could target, so a fixed small multiple stands in).
const VIRTUAL_GAP_MULTIPLIER: u64 = 4;

/// Builder for a [`SimSpace`].
pub struct SpaceBuilder {
    cfg: SystemConfig,
    seed: u64,
    delay: DelayModel,
    registers: Vec<RegisterId>,
    max_events: u64,
    flush_hold: VirtualHold,
    hold_overrides: BTreeMap<(ProcessId, ProcessId), VirtualHold>,
    wire_codec: bool,
}

impl SpaceBuilder {
    /// Starts configuring a sharded simulation of `cfg.n()` processes
    /// hosting a single register (use [`SpaceBuilder::registers`] for more).
    pub fn new(cfg: SystemConfig) -> Self {
        SpaceBuilder {
            cfg,
            seed: 0,
            delay: DelayModel::Fixed(crate::DEFAULT_DELTA),
            registers: vec![RegisterId::ZERO],
            max_events: 50_000_000,
            flush_hold: VirtualHold::Static(0),
            hold_overrides: BTreeMap::new(),
            wire_codec: false,
        }
    }

    /// Routes every flushed frame through the byte-level codec
    /// ([`Frame::encode`] → [`Frame::decode`]): the simulation then runs on
    /// the *decoded* bytes, proving serialization fidelity end to end, and
    /// [`NetStats::wire_bytes`](twobit_proto::NetStats::wire_bytes) reports
    /// the actual bytes a socket would carry. Requires a codec-capable
    /// message type (one overriding the `WireMessage` codec methods) — a
    /// cost-model-only message surfaces as a
    /// [`DriverError::Backend`](twobit_proto::DriverError::Backend) on the
    /// first flush.
    pub fn wire_codec(mut self, on: bool) -> Self {
        self.wire_codec = on;
        self
    }

    /// Sets the RNG seed (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the message delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Hosts registers `r0 .. r(count-1)`.
    pub fn registers(mut self, count: usize) -> Self {
        self.registers = RegisterId::first(count);
        self
    }

    /// Hosts exactly the given registers.
    pub fn register_ids(mut self, registers: Vec<RegisterId>) -> Self {
        self.registers = registers;
        self
    }

    /// Sets the runaway guard on the number of delivery events.
    pub fn max_events(mut self, limit: u64) -> Self {
        self.max_events = limit;
        self
    }

    /// Sets a static flush hold window, in virtual ticks — the engine-side
    /// counterpart of the runtime links' `FlushPolicy`:
    /// envelopes staged on a link wait
    /// up to this long for company before flushing as one frame. The
    /// default of 0 coalesces exactly the sends of one virtual instant;
    /// a window of a fraction of the mean delay batches staggered
    /// operations too, amortizing the routing header much harder. Either
    /// way the channel stays a legal asynchronous channel — the hold is
    /// just extra (bounded) delay.
    pub fn flush_hold(mut self, ticks: SimTime) -> Self {
        self.flush_hold = VirtualHold::Static(ticks);
        self
    }

    /// Sets the flush hold policy, including the adaptive variant
    /// ([`VirtualHold::Adaptive`]) that auto-tunes each link's hold from
    /// its observed inter-arrival gaps — the virtual-time analogue of the
    /// runtime's adaptive `FlushPolicy`.
    ///
    /// # Panics
    ///
    /// Panics on an adaptive hold with `floor > ceil` (this builder has no
    /// fallible build step; the live builders return a typed error for the
    /// same mistake).
    pub fn flush_hold_policy(mut self, hold: VirtualHold) -> Self {
        hold.validate();
        self.flush_hold = hold;
        self
    }

    /// Overrides the hold policy for one ordered link `src → dst`,
    /// leaving every other link on the space-wide default — the
    /// asymmetric-topology knob, mirrored on the live builders as
    /// `flush_policy_for`.
    ///
    /// # Panics
    ///
    /// Panics on an adaptive hold with `floor > ceil`.
    pub fn flush_hold_for(
        mut self,
        src: impl Into<ProcessId>,
        dst: impl Into<ProcessId>,
        hold: VirtualHold,
    ) -> Self {
        hold.validate();
        self.hold_overrides.insert((src.into(), dst.into()), hold);
        self
    }

    /// Instantiates one automaton per `(register, process)` pair via `make`
    /// and returns the space. `initial` is the recorded initial value of
    /// every register.
    pub fn build<A, F>(self, initial: A::Value, mut make: F) -> SimSpace<A>
    where
        A: Automaton,
        F: FnMut(RegisterId, ProcessId) -> A,
    {
        let n = self.cfg.n();
        let nodes: Vec<ShardSet<A>> = (0..n)
            .map(|i| ShardSet::new(ProcessId::new(i), &self.registers, &mut make))
            .collect();
        SimSpace {
            cfg: self.cfg,
            tag_bits: RegisterId::routing_bits(self.registers.len()),
            registers: self.registers,
            nodes,
            crashed: vec![false; n],
            now: 0,
            queue: BinaryHeap::new(),
            staged: BTreeMap::new(),
            flush_hold: self.flush_hold,
            hold_overrides: self.hold_overrides,
            link_gap: BTreeMap::new(),
            wire_codec: self.wire_codec,
            seq: 0,
            rng: StdRng::seed_from_u64(self.seed),
            delay: self.delay,
            initial,
            records: Vec::new(),
            outstanding: HashMap::new(),
            stats: NetStats::new(),
            events: 0,
            max_events: self.max_events,
        }
    }
}

enum SpaceEventKind<M> {
    /// A frame crossing link `from → to`, due at `at`.
    Deliver {
        from: ProcessId,
        to: ProcessId,
        frame: Frame<M>,
    },
    /// A staged link's hold window expires: coalesce its envelopes into
    /// one frame and launch it. Exactly one marker is in flight per staged
    /// link.
    Flush { from: ProcessId, to: ProcessId },
}

struct SpaceEvent<M> {
    at: SimTime,
    seq: u64,
    kind: SpaceEventKind<M>,
}

// Min-heap ordering on (at, seq); BinaryHeap is a max-heap so comparisons
// are reversed here.
impl<M> PartialEq for SpaceEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for SpaceEvent<M> {}
impl<M> PartialOrd for SpaceEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for SpaceEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One ordered link's staged batch: when staging began, and the envelopes
/// waiting for the link's flush marker.
type StagedBatch<M> = (SimTime, Vec<Envelope<M>>);

/// A sharded, interactively-driven deterministic simulation.
///
/// Construct with [`SpaceBuilder`]; drive through the [`Driver`] trait
/// (possibly behind a [`RegisterSpace`](twobit_proto::RegisterSpace) for
/// named registers).
pub struct SimSpace<A: Automaton> {
    cfg: SystemConfig,
    registers: Vec<RegisterId>,
    /// Shard-tag width of the deployment (`⌈log₂ k⌉`), derived once at
    /// build time and used only for routing accounting.
    tag_bits: u64,
    nodes: Vec<ShardSet<A>>,
    crashed: Vec<bool>,
    now: SimTime,
    queue: BinaryHeap<SpaceEvent<A::Msg>>,
    /// Envelopes staged per ordered link (with the instant staging began),
    /// waiting for the link's flush marker to coalesce them into one
    /// [`Frame`].
    staged: BTreeMap<(ProcessId, ProcessId), StagedBatch<A::Msg>>,
    /// How long a staged link waits for more envelopes before flushing.
    flush_hold: VirtualHold,
    /// Per-link hold overrides (asymmetric topologies).
    hold_overrides: BTreeMap<(ProcessId, ProcessId), VirtualHold>,
    /// Per-link EWMA inter-arrival state driving the adaptive hold.
    link_gap: BTreeMap<(ProcessId, ProcessId), LinkGap>,
    /// Encode–decode fidelity mode: every flushed frame crosses the
    /// byte-level codec and the *decoded* copy is what gets delivered.
    wire_codec: bool,
    seq: u64,
    rng: StdRng,
    delay: DelayModel,
    initial: A::Value,
    /// All operation records, tagged with their register; `OpId` = index.
    records: Vec<(RegisterId, OpRecord<A::Value>)>,
    outstanding: HashMap<(ProcessId, RegisterId), OpId>,
    stats: NetStats,
    events: u64,
    max_events: u64,
}

impl<A: Automaton> SimSpace<A> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Delivery events processed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Immutable access to one `(process, register)` automaton.
    pub fn automaton(&self, proc: ProcessId, reg: RegisterId) -> Option<&A> {
        self.nodes.get(proc.index()).and_then(|n| n.shard(reg))
    }

    /// Delivers queued messages until the network is silent.
    ///
    /// # Errors
    ///
    /// [`DriverError::Backend`] on protocol misbehaviour or when the event
    /// guard trips.
    pub fn run_to_quiescence(&mut self) -> Result<(), DriverError> {
        while self.step()? {}
        Ok(())
    }

    /// Checks every live automaton's local invariants.
    ///
    /// # Errors
    ///
    /// The first violation, prefixed with the process id.
    pub fn check_local_invariants(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            if self.crashed[i] {
                continue;
            }
            node.check_local_invariants()
                .map_err(|e| format!("p{i}: {e}"))?;
        }
        Ok(())
    }

    /// Coalesces one staged link's envelopes into a [`Frame`] and queues it
    /// as a single delivery event with one sampled delay — everything the
    /// link accumulated during its hold window shares the routing header.
    /// Under [`SpaceBuilder::wire_codec`] the frame additionally round-trips
    /// the byte codec here, and the decoded copy is what crosses the link.
    fn flush_link(&mut self, from: ProcessId, to: ProcessId) -> Result<(), DriverError> {
        let Some((staged_at, envs)) = self.staged.remove(&(from, to)) else {
            return Ok(());
        };
        let mut frame = Frame::from_envelopes(envs);
        self.stats.record_frame(frame.cost(self.tag_bits));
        // Every simulator flush is the link's hold marker firing; the
        // observed hold is the marker's window (ticks = µs → ns ×1000).
        self.stats.record_flush(
            FlushReason::Hold,
            self.now.saturating_sub(staged_at).saturating_mul(1_000),
        );
        if self.wire_codec {
            let blob = frame
                .encode()
                .map_err(|e| DriverError::Backend(format!("wire codec encode: {e}")))?;
            self.stats.record_wire_bytes(blob.len() as u64);
            frame = Frame::decode(&blob)
                .map_err(|e| DriverError::Backend(format!("wire codec decode: {e}")))?;
        }
        let delay = self.delay.sample(&mut self.rng);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(SpaceEvent {
            at: self.now + delay,
            seq,
            kind: SpaceEventKind::Deliver { from, to, frame },
        });
        Ok(())
    }

    /// Processes the next queued event (a flush marker or a frame
    /// delivery). Returns `Ok(false)` at quiescence. A staged link always
    /// has its flush marker in the queue, so quiescence implies nothing is
    /// staged either.
    fn step(&mut self) -> Result<bool, DriverError> {
        let Some(ev) = self.queue.pop() else {
            debug_assert!(self.staged.is_empty(), "staged links keep a marker queued");
            return Ok(false);
        };
        debug_assert!(ev.at >= self.now, "time must be monotone");
        self.now = ev.at;
        match ev.kind {
            SpaceEventKind::Flush { from, to } => {
                self.flush_link(from, to)?;
            }
            SpaceEventKind::Deliver { from, to, frame } => {
                self.events += 1;
                if self.events > self.max_events {
                    return Err(DriverError::Backend(format!(
                        "event limit exceeded ({} events)",
                        self.max_events
                    )));
                }
                let pi = to.index();
                if self.crashed[pi] {
                    // Atomic non-delivery: the whole frame is lost with its
                    // target.
                    self.stats.record_frame_drop_to_crashed(frame.len() as u64);
                } else {
                    // Atomic delivery: every message in the frame is
                    // handled at this instant, in wire order.
                    self.stats.record_deliveries(frame.len() as u64);
                    let mut fx = Effects::new();
                    for env in frame.into_envelopes() {
                        self.nodes[pi].on_message(from, env, &mut fx);
                    }
                    self.apply_effects(to, fx)?;
                }
            }
        }
        Ok(true)
    }

    /// Stages one handler execution's sends on their links (arming each
    /// link's flush marker) and applies its completions to the records.
    fn apply_effects(
        &mut self,
        p: ProcessId,
        mut fx: Effects<Envelope<A::Msg>, A::Value>,
    ) -> Result<(), DriverError> {
        for (to, env) in fx.drain_sends() {
            debug_assert!(to != p, "protocols must not send to self");
            // Per-message cost with the unframed-equivalent tag; the bits
            // actually on the wire are the frame header, recorded at flush.
            self.stats
                .record_send_for(env.reg, env.kind(), env.cost().with_routing(self.tag_bits));
            // Feed the link's gap estimate on every arrival — same-instant
            // envelopes are gap-0 samples, which is what drives a bursty
            // link toward its hold ceiling.
            let now = self.now;
            let gap_state = self.link_gap.entry((p, to)).or_default();
            if let Some(last) = gap_state.last_arrival {
                let gap = now.saturating_sub(last);
                gap_state.ewma = Some(match gap_state.ewma {
                    None => gap,
                    // Keep a quarter of each new sample (EWMA α = 1/4),
                    // mirroring the live batcher.
                    Some(ewma) => ewma + (gap >> 2) - (ewma >> 2),
                });
            }
            gap_state.last_arrival = Some(now);
            let ewma = gap_state.ewma;
            let (staged_at, staged) = self
                .staged
                .entry((p, to))
                .or_insert_with(|| (now, Vec::new()));
            if staged.is_empty() {
                *staged_at = now;
                // First envelope on this link: arm its flush marker at the
                // end of the hold window the link's policy resolves to.
                let hold = match self
                    .hold_overrides
                    .get(&(p, to))
                    .unwrap_or(&self.flush_hold)
                {
                    VirtualHold::Static(ticks) => *ticks,
                    VirtualHold::Adaptive { floor, ceil } => match ewma {
                        // No gap evidence, or an idle link (the expected
                        // next arrival is past the ceiling): flush fast.
                        None => *floor,
                        Some(gap) if gap >= *ceil => *floor,
                        // Busy link: wait a few arrivals' worth, clamped
                        // into the configured band (see the constant for
                        // why this is not the live gap × max_batch rule).
                        Some(gap) => gap
                            .saturating_mul(VIRTUAL_GAP_MULTIPLIER)
                            .clamp(*floor, *ceil),
                    },
                };
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(SpaceEvent {
                    at: now + hold,
                    seq,
                    kind: SpaceEventKind::Flush { from: p, to },
                });
            }
            staged.push(env);
        }
        for (op_id, outcome) in fx.drain_completions() {
            let (reg, rec) = self
                .records
                .get_mut(op_id.raw() as usize)
                .ok_or_else(|| DriverError::Backend(format!("completion for unknown {op_id}")))?;
            if rec.completed.is_some() {
                return Err(DriverError::Backend(format!("{op_id} completed twice")));
            }
            if rec.proc != p {
                return Err(DriverError::Backend(format!(
                    "{op_id} of {} completed by {p}",
                    rec.proc
                )));
            }
            rec.completed = Some((self.now, outcome));
            self.outstanding.remove(&(p, *reg));
        }
        Ok(())
    }
}

impl<A: Automaton> Driver for SimSpace<A> {
    type Value = A::Value;

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    fn registers(&self) -> Vec<RegisterId> {
        self.registers.clone()
    }

    fn invoke(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<A::Value>,
    ) -> Result<OpTicket, DriverError> {
        let pi = proc.index();
        if pi >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        if !self.registers.contains(&reg) {
            return Err(DriverError::UnknownRegister(reg));
        }
        if self.crashed[pi] {
            return Err(DriverError::ProcessUnavailable(proc));
        }
        if self.outstanding.contains_key(&(proc, reg)) {
            return Err(DriverError::OperationInFlight { proc, reg });
        }
        let op_id = OpId::new(self.records.len() as u64);
        self.records.push((
            reg,
            OpRecord {
                op_id,
                proc,
                op: op.clone(),
                invoked_at: self.now,
                completed: None,
            },
        ));
        self.outstanding.insert((proc, reg), op_id);
        let mut fx = Effects::new();
        self.nodes[pi]
            .on_invoke(reg, op_id, op, &mut fx)
            .expect("register presence checked above");
        self.apply_effects(proc, fx)?;
        Ok(OpTicket { proc, reg, op_id })
    }

    fn poll(&mut self, ticket: &OpTicket) -> Result<OpOutcome<A::Value>, DriverError> {
        loop {
            let (_, rec) = self
                .records
                .get(ticket.op_id.raw() as usize)
                .ok_or(DriverError::Stalled(ticket.op_id))?;
            if let Some((_, outcome)) = &rec.completed {
                return Ok(outcome.clone());
            }
            if !self.step()? {
                return if self.crashed[ticket.proc.index()] {
                    Err(DriverError::ProcessUnavailable(ticket.proc))
                } else {
                    Err(DriverError::Stalled(ticket.op_id))
                };
            }
        }
    }

    fn crash(&mut self, proc: ProcessId) {
        self.crashed[proc.index()] = true;
    }

    fn history(&self) -> ShardedHistory<A::Value> {
        ShardedHistory::from_tagged(
            self.initial.clone(),
            self.registers.iter().copied(),
            self.records.iter().cloned(),
        )
    }

    fn stats(&self) -> NetStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MajorityEcho;

    fn cfg5() -> SystemConfig {
        SystemConfig::new(5, 2).unwrap()
    }

    fn space(regs: usize, seed: u64) -> SimSpace<MajorityEcho> {
        let cfg = cfg5();
        SpaceBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Fixed(1_000))
            .registers(regs)
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg))
    }

    #[test]
    fn shards_are_independent() {
        let mut s = space(4, 1);
        let p1 = ProcessId::new(1);
        s.write(p1, RegisterId::new(2), 9).unwrap();
        // Only r2 saw traffic: 4 PINGs + 4 PONGs.
        assert_eq!(s.stats().shard(RegisterId::new(2)).sent, 8);
        assert_eq!(s.stats().shard(RegisterId::new(0)).sent, 0);
        assert_eq!(s.stats().total_sent(), 8);
        // Unframed-equivalent routing: ⌈log₂ 4⌉ = 2 bits per message;
        // control stays intact. On the wire, each message travelled in a
        // frame whose header is recorded separately.
        assert_eq!(s.stats().routing_bits(), 16);
        assert_eq!(s.stats().frames_sent(), 8, "one frame per link crossing");
        assert_eq!(s.stats().framed_messages(), 8);
        assert!(s.stats().frame_header_bits() > 0);
        let h = s.history();
        assert_eq!(h.shard(RegisterId::new(2)).unwrap().len(), 1);
        assert_eq!(h.shard(RegisterId::new(0)).unwrap().len(), 0);
    }

    #[test]
    fn same_instant_same_link_sends_coalesce_into_one_frame() {
        let mut s = space(2, 9);
        let p0 = ProcessId::new(0);
        // Two writes on different registers issued at the same virtual
        // instant: each peer link carries both PINGs in ONE frame.
        let t0 = s
            .invoke(p0, RegisterId::new(0), Operation::Write(1))
            .unwrap();
        let t1 = s
            .invoke(p0, RegisterId::new(1), Operation::Write(2))
            .unwrap();
        s.poll(&t0).unwrap();
        s.poll(&t1).unwrap();
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        // 4 peers × (1 PING frame out + 1 PONG frame back), 2 messages each.
        assert_eq!(stats.total_sent(), 16);
        assert_eq!(stats.frames_sent(), 8);
        assert_eq!(stats.max_frame_messages(), 2);
        assert!((stats.messages_per_frame() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn frames_drop_atomically_to_crashed_destination() {
        let mut s = space(2, 12);
        let p0 = ProcessId::new(0);
        let p4 = ProcessId::new(4);
        let t0 = s
            .invoke(p0, RegisterId::new(0), Operation::Write(1))
            .unwrap();
        let t1 = s
            .invoke(p0, RegisterId::new(1), Operation::Write(2))
            .unwrap();
        // Crash p4 while the two-message frame to it is still in flight:
        // both messages vanish together, none is half-delivered.
        s.crash(p4);
        s.poll(&t0).unwrap();
        s.poll(&t1).unwrap();
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        assert_eq!(stats.dropped_to_crashed(), 2, "whole frame dropped");
        // 8 PINGs + the 3 live peers' 2 PONGs each; p4 never replies.
        assert_eq!(stats.total_sent(), 14);
        assert_eq!(
            stats.total_delivered() + stats.dropped_to_crashed(),
            stats.total_sent(),
            "every sent message is delivered or dropped whole-frame"
        );
    }

    #[test]
    fn pipelining_across_shards_sequential_per_shard() {
        let mut s = space(2, 2);
        let p0 = ProcessId::new(0);
        let r0 = RegisterId::new(0);
        let r1 = RegisterId::new(1);
        let t0 = s.invoke(p0, r0, Operation::Write(1)).unwrap();
        // Same process, different register: pipelines.
        let t1 = s.invoke(p0, r1, Operation::Write(2)).unwrap();
        // Same register: rejected with a typed error.
        let err = s.invoke(p0, r0, Operation::Read).unwrap_err();
        assert_eq!(err, DriverError::OperationInFlight { proc: p0, reg: r0 });
        assert_eq!(s.poll(&t0).unwrap(), OpOutcome::Written);
        assert_eq!(s.poll(&t1).unwrap(), OpOutcome::Written);
        // Both writes overlapped in virtual time.
        let h = s.history();
        let w0 = &h.shard(r0).unwrap().records[0];
        let w1 = &h.shard(r1).unwrap().records[0];
        assert_eq!(w0.invoked_at, w1.invoked_at);
    }

    #[test]
    fn wire_codec_mode_runs_on_decoded_bytes() {
        let cfg = cfg5();
        let mut s = SpaceBuilder::new(cfg)
            .seed(21)
            .delay(DelayModel::Fixed(1_000))
            .registers(4)
            .wire_codec(true)
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
        let p0 = ProcessId::new(0);
        s.write(p0, RegisterId::new(1), 77).unwrap();
        assert_eq!(s.read(p0, RegisterId::new(1)).unwrap(), 77);
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        assert!(stats.wire_bytes() > 0, "every frame crossed as bytes");
        assert_eq!(
            stats.total_delivered() + stats.dropped_to_crashed(),
            stats.total_sent(),
            "decoded frames deliver exactly the encoded messages"
        );
        // The protocol made progress on decoded bytes, so fidelity held.
        assert!(stats.frames_sent() > 0);
    }

    #[test]
    fn wire_codec_mode_is_deterministic_and_equivalent() {
        // Same seed, codec on vs off: identical timings, events and
        // traffic — the codec is a pass-through for semantics.
        let run = |codec: bool| {
            let cfg = cfg5();
            let mut s = SpaceBuilder::new(cfg)
                .seed(11)
                .delay(DelayModel::Fixed(1_000))
                .registers(3)
                .wire_codec(codec)
                .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
            for i in 0..3usize {
                s.write(ProcessId::new(i), RegisterId::new(i), 7).unwrap();
            }
            s.run_to_quiescence().unwrap();
            (s.now(), s.events(), s.stats().total_sent())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn every_simnet_frame_carries_a_hold_flush_reason() {
        let mut s = space(4, 6);
        let p1 = ProcessId::new(1);
        s.write(p1, RegisterId::new(2), 9).unwrap();
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        assert_eq!(
            stats.flushes(twobit_proto::FlushReason::Hold),
            stats.frames_sent(),
            "the simulator's flushes are all hold-marker firings"
        );
        assert_eq!(stats.flushes_total(), stats.frames_sent());
    }

    #[test]
    fn static_hold_window_is_observed_in_the_stats() {
        let cfg = cfg5();
        let mut s = SpaceBuilder::new(cfg)
            .seed(4)
            .delay(DelayModel::Fixed(1_000))
            .flush_hold(250)
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
        s.write(ProcessId::new(0), RegisterId::ZERO, 1).unwrap();
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        assert_eq!(
            stats.max_observed_hold_ns(),
            250 * 1_000,
            "250 virtual ticks = 250µs of observed hold"
        );
    }

    #[test]
    fn adaptive_hold_is_deterministic_and_equivalent_to_itself() {
        let run = || {
            let cfg = cfg5();
            let mut s = SpaceBuilder::new(cfg)
                .seed(13)
                .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
                .flush_hold_policy(VirtualHold::Adaptive {
                    floor: 0,
                    ceil: 1_500,
                })
                .registers(3)
                .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
            for round in 0..4u64 {
                for i in 0..3usize {
                    s.write(ProcessId::new(i), RegisterId::new(i), round)
                        .unwrap();
                }
            }
            s.run_to_quiescence().unwrap();
            (
                s.now(),
                s.events(),
                s.stats().total_sent(),
                s.stats().frames_sent(),
                s.stats().observed_hold_ns(),
            )
        };
        assert_eq!(run(), run(), "adaptive holds stay a function of the seed");
    }

    #[test]
    fn adaptive_hold_coalesces_staggered_traffic_at_least_as_well_as_zero_hold() {
        let run = |hold: VirtualHold| {
            let cfg = cfg5();
            let mut s = SpaceBuilder::new(cfg)
                .seed(29)
                .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
                .flush_hold_policy(hold)
                .registers(8)
                .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
            // Staggered, busy traffic: issue every register's write and let
            // replies overlap so links see a stream, not lone messages.
            let mut tickets = Vec::new();
            for k in 0..8usize {
                tickets.push(
                    s.invoke(
                        ProcessId::new(k % 5),
                        RegisterId::new(k),
                        Operation::Write(1),
                    )
                    .unwrap(),
                );
            }
            for t in &tickets {
                s.poll(t).unwrap();
            }
            s.run_to_quiescence().unwrap();
            s.stats().frames_sent()
        };
        let zero = run(VirtualHold::Static(0));
        let adaptive = run(VirtualHold::Adaptive {
            floor: 0,
            ceil: 1_500,
        });
        assert!(
            adaptive <= zero,
            "adaptive ({adaptive} frames) must coalesce at least as hard as zero hold ({zero})"
        );
    }

    #[test]
    fn per_link_hold_override_applies_to_that_link() {
        let cfg = cfg5();
        let mut s = SpaceBuilder::new(cfg)
            .seed(3)
            .delay(DelayModel::Fixed(1_000))
            .flush_hold(0)
            // p0 → p1 holds long; every other link flushes per instant.
            .flush_hold_for(0, 1, VirtualHold::Static(400))
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg));
        s.write(ProcessId::new(0), RegisterId::ZERO, 5).unwrap();
        s.run_to_quiescence().unwrap();
        let stats = s.stats();
        assert_eq!(
            stats.max_observed_hold_ns(),
            400 * 1_000,
            "only the overridden link held its batch"
        );
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn inverted_adaptive_band_panics_at_the_builder() {
        let cfg = cfg5();
        let _ = SpaceBuilder::new(cfg).flush_hold_policy(VirtualHold::Adaptive {
            floor: 100,
            ceil: 50,
        });
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut s = space(3, seed);
            for i in 0..3usize {
                s.write(ProcessId::new(i), RegisterId::new(i), 7).unwrap();
            }
            s.run_to_quiescence().unwrap();
            (s.now(), s.events(), s.stats().total_sent())
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn crash_is_observed() {
        let mut s = space(1, 3);
        s.crash(ProcessId::new(2));
        let err = s
            .invoke(ProcessId::new(2), RegisterId::ZERO, Operation::Read)
            .unwrap_err();
        assert_eq!(err, DriverError::ProcessUnavailable(ProcessId::new(2)));
        // Minority crash: others still make progress.
        s.write(ProcessId::new(0), RegisterId::ZERO, 5).unwrap();
    }

    #[test]
    fn bad_addresses_are_typed() {
        let mut s = space(2, 4);
        assert_eq!(
            s.invoke(ProcessId::new(9), RegisterId::ZERO, Operation::Read)
                .unwrap_err(),
            DriverError::UnknownProcess(ProcessId::new(9))
        );
        assert_eq!(
            s.invoke(ProcessId::new(0), RegisterId::new(7), Operation::Read)
                .unwrap_err(),
            DriverError::UnknownRegister(RegisterId::new(7))
        );
    }
}
