//! Deterministic sharded simulator: many registers over one simulated
//! cluster, driven interactively through the [`Driver`] interface.
//!
//! Where [`Simulation`](crate::Simulation) hosts the paper's single register
//! under scripted client plans, `SimSpace` hosts a whole
//! [`ShardSet`] per process — one automaton instance per register, wire
//! messages wrapped in [`Envelope`]s — and is driven one operation at a
//! time: [`Driver::invoke`] runs the invocation handler at the current
//! virtual instant, [`Driver::poll`] advances the delivery queue until the
//! operation completes. Runs are a deterministic function of the seed, like
//! every simulation in this workspace.
//!
//! # Examples
//!
//! ```
//! use twobit_proto::{Driver, ProcessId, RegisterId, SystemConfig};
//! use twobit_simnet::SpaceBuilder;
//! # use twobit_simnet::testutil::NullRegister;
//!
//! let cfg = SystemConfig::new(3, 1)?;
//! let mut space = SpaceBuilder::new(cfg)
//!     .seed(7)
//!     .registers(8)
//!     .build(0u64, |_reg, id| NullRegister::new(id, cfg));
//! let p0 = ProcessId::new(0);
//! space.write(p0, RegisterId::new(3), 42)?;
//! assert_eq!(space.read(p0, RegisterId::new(3))?, 42);
//! assert_eq!(space.history().len(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::SeedableRng;

use twobit_proto::{
    Automaton, Driver, DriverError, Effects, Envelope, NetStats, OpId, OpOutcome, OpRecord,
    OpTicket, Operation, ProcessId, RegisterId, ShardSet, ShardedHistory, SystemConfig,
    WireMessage,
};

use crate::delay::DelayModel;
use crate::SimTime;

/// Builder for a [`SimSpace`].
pub struct SpaceBuilder {
    cfg: SystemConfig,
    seed: u64,
    delay: DelayModel,
    registers: Vec<RegisterId>,
    max_events: u64,
}

impl SpaceBuilder {
    /// Starts configuring a sharded simulation of `cfg.n()` processes
    /// hosting a single register (use [`SpaceBuilder::registers`] for more).
    pub fn new(cfg: SystemConfig) -> Self {
        SpaceBuilder {
            cfg,
            seed: 0,
            delay: DelayModel::Fixed(crate::DEFAULT_DELTA),
            registers: vec![RegisterId::ZERO],
            max_events: 50_000_000,
        }
    }

    /// Sets the RNG seed (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the message delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Hosts registers `r0 .. r(count-1)`.
    pub fn registers(mut self, count: usize) -> Self {
        self.registers = RegisterId::first(count);
        self
    }

    /// Hosts exactly the given registers.
    pub fn register_ids(mut self, registers: Vec<RegisterId>) -> Self {
        self.registers = registers;
        self
    }

    /// Sets the runaway guard on the number of delivery events.
    pub fn max_events(mut self, limit: u64) -> Self {
        self.max_events = limit;
        self
    }

    /// Instantiates one automaton per `(register, process)` pair via `make`
    /// and returns the space. `initial` is the recorded initial value of
    /// every register.
    pub fn build<A, F>(self, initial: A::Value, mut make: F) -> SimSpace<A>
    where
        A: Automaton,
        F: FnMut(RegisterId, ProcessId) -> A,
    {
        let n = self.cfg.n();
        let nodes: Vec<ShardSet<A>> = (0..n)
            .map(|i| ShardSet::new(ProcessId::new(i), &self.registers, &mut make))
            .collect();
        SimSpace {
            cfg: self.cfg,
            registers: self.registers,
            nodes,
            crashed: vec![false; n],
            now: 0,
            queue: BinaryHeap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(self.seed),
            delay: self.delay,
            initial,
            records: Vec::new(),
            outstanding: HashMap::new(),
            stats: NetStats::new(),
            events: 0,
            max_events: self.max_events,
        }
    }
}

struct SpaceEvent<M> {
    at: SimTime,
    seq: u64,
    from: ProcessId,
    to: ProcessId,
    env: Envelope<M>,
}

// Min-heap ordering on (at, seq); BinaryHeap is a max-heap so comparisons
// are reversed here.
impl<M> PartialEq for SpaceEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for SpaceEvent<M> {}
impl<M> PartialOrd for SpaceEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for SpaceEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A sharded, interactively-driven deterministic simulation.
///
/// Construct with [`SpaceBuilder`]; drive through the [`Driver`] trait
/// (possibly behind a [`RegisterSpace`](twobit_proto::RegisterSpace) for
/// named registers).
pub struct SimSpace<A: Automaton> {
    cfg: SystemConfig,
    registers: Vec<RegisterId>,
    nodes: Vec<ShardSet<A>>,
    crashed: Vec<bool>,
    now: SimTime,
    queue: BinaryHeap<SpaceEvent<A::Msg>>,
    seq: u64,
    rng: StdRng,
    delay: DelayModel,
    initial: A::Value,
    /// All operation records, tagged with their register; `OpId` = index.
    records: Vec<(RegisterId, OpRecord<A::Value>)>,
    outstanding: HashMap<(ProcessId, RegisterId), OpId>,
    stats: NetStats,
    events: u64,
    max_events: u64,
}

impl<A: Automaton> SimSpace<A> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Delivery events processed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Immutable access to one `(process, register)` automaton.
    pub fn automaton(&self, proc: ProcessId, reg: RegisterId) -> Option<&A> {
        self.nodes.get(proc.index()).and_then(|n| n.shard(reg))
    }

    /// Delivers queued messages until the network is silent.
    ///
    /// # Errors
    ///
    /// [`DriverError::Backend`] on protocol misbehaviour or when the event
    /// guard trips.
    pub fn run_to_quiescence(&mut self) -> Result<(), DriverError> {
        while self.step()? {}
        Ok(())
    }

    /// Checks every live automaton's local invariants.
    ///
    /// # Errors
    ///
    /// The first violation, prefixed with the process id.
    pub fn check_local_invariants(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            if self.crashed[i] {
                continue;
            }
            node.check_local_invariants()
                .map_err(|e| format!("p{i}: {e}"))?;
        }
        Ok(())
    }

    /// Delivers the next queued message. Returns `Ok(false)` at quiescence.
    fn step(&mut self) -> Result<bool, DriverError> {
        let Some(ev) = self.queue.pop() else {
            return Ok(false);
        };
        debug_assert!(ev.at >= self.now, "time must be monotone");
        self.now = ev.at;
        self.events += 1;
        if self.events > self.max_events {
            return Err(DriverError::Backend(format!(
                "event limit exceeded ({} events)",
                self.max_events
            )));
        }
        let pi = ev.to.index();
        if self.crashed[pi] {
            self.stats.record_drop_to_crashed();
        } else {
            self.stats.record_delivery();
            let mut fx = Effects::new();
            self.nodes[pi].on_message(ev.from, ev.env, &mut fx);
            self.apply_effects(ev.to, fx)?;
        }
        Ok(true)
    }

    /// Routes one handler execution's sends into the delivery queue and
    /// applies its completions to the records.
    fn apply_effects(
        &mut self,
        p: ProcessId,
        mut fx: Effects<Envelope<A::Msg>, A::Value>,
    ) -> Result<(), DriverError> {
        for (to, env) in fx.drain_sends() {
            debug_assert!(to != p, "protocols must not send to self");
            self.stats.record_send_for(env.reg, env.kind(), env.cost());
            let delay = self.delay.sample(&mut self.rng);
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(SpaceEvent {
                at: self.now + delay,
                seq,
                from: p,
                to,
                env,
            });
        }
        for (op_id, outcome) in fx.drain_completions() {
            let (reg, rec) = self
                .records
                .get_mut(op_id.raw() as usize)
                .ok_or_else(|| DriverError::Backend(format!("completion for unknown {op_id}")))?;
            if rec.completed.is_some() {
                return Err(DriverError::Backend(format!("{op_id} completed twice")));
            }
            if rec.proc != p {
                return Err(DriverError::Backend(format!(
                    "{op_id} of {} completed by {p}",
                    rec.proc
                )));
            }
            rec.completed = Some((self.now, outcome));
            self.outstanding.remove(&(p, *reg));
        }
        Ok(())
    }
}

impl<A: Automaton> Driver for SimSpace<A> {
    type Value = A::Value;

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    fn registers(&self) -> Vec<RegisterId> {
        self.registers.clone()
    }

    fn invoke(
        &mut self,
        proc: ProcessId,
        reg: RegisterId,
        op: Operation<A::Value>,
    ) -> Result<OpTicket, DriverError> {
        let pi = proc.index();
        if pi >= self.cfg.n() {
            return Err(DriverError::UnknownProcess(proc));
        }
        if !self.registers.contains(&reg) {
            return Err(DriverError::UnknownRegister(reg));
        }
        if self.crashed[pi] {
            return Err(DriverError::ProcessUnavailable(proc));
        }
        if self.outstanding.contains_key(&(proc, reg)) {
            return Err(DriverError::OperationInFlight { proc, reg });
        }
        let op_id = OpId::new(self.records.len() as u64);
        self.records.push((
            reg,
            OpRecord {
                op_id,
                proc,
                op: op.clone(),
                invoked_at: self.now,
                completed: None,
            },
        ));
        self.outstanding.insert((proc, reg), op_id);
        let mut fx = Effects::new();
        self.nodes[pi]
            .on_invoke(reg, op_id, op, &mut fx)
            .expect("register presence checked above");
        self.apply_effects(proc, fx)?;
        Ok(OpTicket { proc, reg, op_id })
    }

    fn poll(&mut self, ticket: &OpTicket) -> Result<OpOutcome<A::Value>, DriverError> {
        loop {
            let (_, rec) = self
                .records
                .get(ticket.op_id.raw() as usize)
                .ok_or(DriverError::Stalled(ticket.op_id))?;
            if let Some((_, outcome)) = &rec.completed {
                return Ok(outcome.clone());
            }
            if !self.step()? {
                return if self.crashed[ticket.proc.index()] {
                    Err(DriverError::ProcessUnavailable(ticket.proc))
                } else {
                    Err(DriverError::Stalled(ticket.op_id))
                };
            }
        }
    }

    fn crash(&mut self, proc: ProcessId) {
        self.crashed[proc.index()] = true;
    }

    fn history(&self) -> ShardedHistory<A::Value> {
        ShardedHistory::from_tagged(
            self.initial.clone(),
            self.registers.iter().copied(),
            self.records.iter().cloned(),
        )
    }

    fn stats(&self) -> NetStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MajorityEcho;

    fn cfg5() -> SystemConfig {
        SystemConfig::new(5, 2).unwrap()
    }

    fn space(regs: usize, seed: u64) -> SimSpace<MajorityEcho> {
        let cfg = cfg5();
        SpaceBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Fixed(1_000))
            .registers(regs)
            .build(0u64, |_reg, id| MajorityEcho::new(id, cfg))
    }

    #[test]
    fn shards_are_independent() {
        let mut s = space(4, 1);
        let p1 = ProcessId::new(1);
        s.write(p1, RegisterId::new(2), 9).unwrap();
        // Only r2 saw traffic: 4 PINGs + 4 PONGs.
        assert_eq!(s.stats().shard(RegisterId::new(2)).sent, 8);
        assert_eq!(s.stats().shard(RegisterId::new(0)).sent, 0);
        assert_eq!(s.stats().total_sent(), 8);
        // Routing tag: ⌈log₂ 4⌉ = 2 bits per message, control stays intact.
        assert_eq!(s.stats().routing_bits(), 16);
        let h = s.history();
        assert_eq!(h.shard(RegisterId::new(2)).unwrap().len(), 1);
        assert_eq!(h.shard(RegisterId::new(0)).unwrap().len(), 0);
    }

    #[test]
    fn pipelining_across_shards_sequential_per_shard() {
        let mut s = space(2, 2);
        let p0 = ProcessId::new(0);
        let r0 = RegisterId::new(0);
        let r1 = RegisterId::new(1);
        let t0 = s.invoke(p0, r0, Operation::Write(1)).unwrap();
        // Same process, different register: pipelines.
        let t1 = s.invoke(p0, r1, Operation::Write(2)).unwrap();
        // Same register: rejected with a typed error.
        let err = s.invoke(p0, r0, Operation::Read).unwrap_err();
        assert_eq!(err, DriverError::OperationInFlight { proc: p0, reg: r0 });
        assert_eq!(s.poll(&t0).unwrap(), OpOutcome::Written);
        assert_eq!(s.poll(&t1).unwrap(), OpOutcome::Written);
        // Both writes overlapped in virtual time.
        let h = s.history();
        let w0 = &h.shard(r0).unwrap().records[0];
        let w1 = &h.shard(r1).unwrap().records[0];
        assert_eq!(w0.invoked_at, w1.invoked_at);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut s = space(3, seed);
            for i in 0..3usize {
                s.write(ProcessId::new(i), RegisterId::new(i), 7).unwrap();
            }
            s.run_to_quiescence().unwrap();
            (s.now(), s.events(), s.stats().total_sent())
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn crash_is_observed() {
        let mut s = space(1, 3);
        s.crash(ProcessId::new(2));
        let err = s
            .invoke(ProcessId::new(2), RegisterId::ZERO, Operation::Read)
            .unwrap_err();
        assert_eq!(err, DriverError::ProcessUnavailable(ProcessId::new(2)));
        // Minority crash: others still make progress.
        s.write(ProcessId::new(0), RegisterId::ZERO, 5).unwrap();
    }

    #[test]
    fn bad_addresses_are_typed() {
        let mut s = space(2, 4);
        assert_eq!(
            s.invoke(ProcessId::new(9), RegisterId::ZERO, Operation::Read)
                .unwrap_err(),
            DriverError::UnknownProcess(ProcessId::new(9))
        );
        assert_eq!(
            s.invoke(ProcessId::new(0), RegisterId::new(7), Operation::Read)
                .unwrap_err(),
            DriverError::UnknownRegister(RegisterId::new(7))
        );
    }
}
