//! Global invariant hooks: predicates over the *whole* system state.
//!
//! The paper's proof (§4) rests on invariants that relate the local states
//! of different processes and the messages in flight — e.g. Lemma 2
//! (`w_sync_i[i] ≥ w_sync_j[i]`), property P2
//! (`|w_sync_i[j] − w_sync_j[i]| ≤ 1`), and property P1 (at most one WRITE
//! bypasses another per channel). A [`SimInvariant`] is checked by the
//! simulator after events, with full visibility of every process and every
//! in-flight message; a violation aborts the run with a replayable report.

use twobit_proto::{Automaton, ProcessId};

use crate::SimTime;

/// A message currently in flight on some channel.
#[derive(Debug)]
pub struct InFlightMsg<'a, M> {
    /// Sender.
    pub from: ProcessId,
    /// Destination.
    pub to: ProcessId,
    /// The message.
    pub msg: &'a M,
    /// When it was handed to the network.
    pub sent_at: SimTime,
    /// When it will be delivered (or dropped, if the destination crashed).
    pub deliver_at: SimTime,
    /// Global send sequence number (total order of sends); on a given
    /// channel, a message with a smaller `send_seq` was sent earlier.
    pub send_seq: u64,
}

/// Read-only view of the entire simulated system at one instant.
pub struct SimView<'a, A: Automaton> {
    /// Current virtual time.
    pub now: SimTime,
    /// All process automatons, indexed by process id.
    pub procs: &'a [A],
    /// Crash flags, indexed by process id.
    pub crashed: &'a [bool],
    /// Every message in flight (unordered).
    pub inflight: &'a [InFlightMsg<'a, A::Msg>],
}

impl<A: Automaton> std::fmt::Debug for SimView<'_, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimView")
            .field("now", &self.now)
            .field("crashed", &self.crashed)
            .field("inflight", &self.inflight.len())
            .finish_non_exhaustive()
    }
}

impl<'a, A: Automaton> SimView<'a, A> {
    /// Iterates over live (non-crashed) processes.
    pub fn live_procs(&self) -> impl Iterator<Item = &'a A> + '_ {
        self.procs
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.crashed[*i])
            .map(|(_, p)| p)
    }

    /// In-flight messages on the ordered channel `from → to`, sorted by
    /// send order.
    pub fn channel(&self, from: ProcessId, to: ProcessId) -> Vec<&InFlightMsg<'a, A::Msg>> {
        let mut msgs: Vec<_> = self
            .inflight
            .iter()
            .filter(|m| m.from == from && m.to == to)
            .collect();
        msgs.sort_by_key(|m| m.send_seq);
        msgs
    }
}

/// Description of a failed invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// Virtual time of the violation.
    pub at: SimTime,
    /// Human-readable details.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant '{}' violated at t={}: {}",
            self.invariant, self.at, self.detail
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// A predicate over the global system state, checked during simulation.
pub trait SimInvariant<A: Automaton> {
    /// Name used in violation reports.
    fn name(&self) -> &'static str;

    /// Checks the invariant; returns a description of the violation if any.
    fn check(&mut self, view: &SimView<'_, A>) -> Result<(), String>;
}

/// Blanket adapter: any `(name, closure)` pair is an invariant.
impl<A, F> SimInvariant<A> for (&'static str, F)
where
    A: Automaton,
    F: FnMut(&SimView<'_, A>) -> Result<(), String>,
{
    fn name(&self) -> &'static str {
        self.0
    }

    fn check(&mut self, view: &SimView<'_, A>) -> Result<(), String> {
        (self.1)(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::NullRegister;
    use twobit_proto::SystemConfig;

    #[test]
    fn view_helpers() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let procs: Vec<NullRegister> = (0..3).map(|i| NullRegister::new(i.into(), cfg)).collect();
        let crashed = vec![false, true, false];
        let inflight: Vec<InFlightMsg<'_, <NullRegister as Automaton>::Msg>> = Vec::new();
        let view = SimView {
            now: 5,
            procs: &procs,
            crashed: &crashed,
            inflight: &inflight,
        };
        assert_eq!(view.live_procs().count(), 2);
        assert!(view
            .channel(ProcessId::new(0), ProcessId::new(1))
            .is_empty());
    }

    #[test]
    fn closure_invariant_adapts() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let procs: Vec<NullRegister> = (0..3).map(|i| NullRegister::new(i.into(), cfg)).collect();
        let crashed = vec![false; 3];
        let inflight = Vec::new();
        let view = SimView {
            now: 0,
            procs: &procs,
            crashed: &crashed,
            inflight: &inflight,
        };
        let mut inv = ("always-ok", |_: &SimView<'_, NullRegister>| Ok(()));
        assert_eq!(SimInvariant::name(&inv), "always-ok");
        assert!(inv.check(&view).is_ok());
        let mut bad = ("always-bad", |_: &SimView<'_, NullRegister>| {
            Err("boom".to_string())
        });
        assert_eq!(bad.check(&view), Err("boom".to_string()));
    }

    #[test]
    fn violation_display() {
        let v = InvariantViolation {
            invariant: "P2",
            at: 42,
            detail: "gap of 2".into(),
        };
        assert_eq!(v.to_string(), "invariant 'P2' violated at t=42: gap of 2");
    }
}
