//! Client workloads: what each (sequential) process asks of its register.
//!
//! Processes in the model are sequential — a client invokes its next
//! operation only after the previous one returned. A [`ClientPlan`] is
//! therefore a closed-loop script: an ordered list of operations with
//! optional pauses. Open-loop behaviour is not meaningful under the paper's
//! process model and is intentionally absent.

use twobit_proto::Operation;

use crate::SimTime;

/// One scripted operation with an optional pause before its invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedOp<V> {
    /// The operation to invoke.
    pub op: Operation<V>,
    /// Extra virtual time to wait (after the previous operation completed,
    /// or after `start_at` for the first operation) before invoking.
    pub delay_before: SimTime,
}

impl<V> PlannedOp<V> {
    /// An operation invoked immediately when its turn comes.
    pub fn immediate(op: Operation<V>) -> Self {
        PlannedOp {
            op,
            delay_before: 0,
        }
    }

    /// An operation invoked after a pause.
    pub fn after(delay: SimTime, op: Operation<V>) -> Self {
        PlannedOp {
            op,
            delay_before: delay,
        }
    }
}

/// A closed-loop script for one process.
///
/// # Examples
///
/// ```
/// use twobit_proto::Operation;
/// use twobit_simnet::{ClientPlan, PlannedOp};
///
/// // Write three values back-to-back, starting at t=100.
/// let plan = ClientPlan::ops([
///     Operation::Write(1u64),
///     Operation::Write(2),
///     Operation::Write(3),
/// ])
/// .starting_at(100);
/// assert_eq!(plan.len(), 3);
///
/// // A reader that polls every 500 ticks.
/// let poll = ClientPlan::new(
///     (0..4).map(|_| PlannedOp::after(500, Operation::<u64>::Read)),
/// );
/// assert_eq!(poll.len(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientPlan<V> {
    ops: Vec<PlannedOp<V>>,
    start_at: SimTime,
}

impl<V> ClientPlan<V> {
    /// Creates a plan from planned operations.
    pub fn new(ops: impl IntoIterator<Item = PlannedOp<V>>) -> Self {
        ClientPlan {
            ops: ops.into_iter().collect(),
            start_at: 0,
        }
    }

    /// Creates a plan of back-to-back operations (no pauses).
    pub fn ops(ops: impl IntoIterator<Item = Operation<V>>) -> Self {
        ClientPlan::new(ops.into_iter().map(PlannedOp::immediate))
    }

    /// An empty plan (process participates in the protocol but invokes
    /// nothing).
    pub fn idle() -> Self {
        ClientPlan {
            ops: Vec::new(),
            start_at: 0,
        }
    }

    /// Sets the virtual time at which the first operation becomes eligible.
    pub fn starting_at(mut self, t: SimTime) -> Self {
        self.start_at = t;
        self
    }

    /// Number of scripted operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the plan contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The script's start time.
    pub fn start_at(&self) -> SimTime {
        self.start_at
    }

    pub(crate) fn into_parts(self) -> (Vec<PlannedOp<V>>, SimTime) {
        (self.ops, self.start_at)
    }
}

impl<V> Default for ClientPlan<V> {
    fn default() -> Self {
        ClientPlan::idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_construction() {
        let p = ClientPlan::ops([Operation::Write(1u64), Operation::Read]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.start_at(), 0);
        let p = p.starting_at(50);
        assert_eq!(p.start_at(), 50);
        let (ops, start) = p.into_parts();
        assert_eq!(start, 50);
        assert_eq!(ops[0].delay_before, 0);
        assert_eq!(ops[0].op, Operation::Write(1));
    }

    #[test]
    fn idle_plan_is_empty() {
        let p: ClientPlan<u64> = ClientPlan::idle();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(ClientPlan::<u64>::default(), p);
    }

    #[test]
    fn planned_op_constructors() {
        let a = PlannedOp::immediate(Operation::Write(5u64));
        assert_eq!(a.delay_before, 0);
        let b = PlannedOp::after(9, Operation::<u64>::Read);
        assert_eq!(b.delay_before, 9);
        assert!(b.op.is_read());
    }
}
