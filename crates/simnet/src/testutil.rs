//! Tiny reference automatons used to test the simulator itself (and useful
//! in doctests). Not register implementations anyone should use — see
//! `twobit-core` and `twobit-baselines` for the real protocols.

use twobit_proto::bits::{BitReader, BitWriter, WireError};
use twobit_proto::{
    Automaton, Effects, MessageCost, OpId, Operation, ProcessId, SystemConfig, WireMessage,
};

/// A "register" with no communication at all: every operation completes
/// locally and instantly. Exists to exercise invocation plumbing.
#[derive(Debug)]
pub struct NullRegister {
    id: ProcessId,
    cfg: SystemConfig,
    value: u64,
}

impl NullRegister {
    /// Creates the process.
    pub fn new(id: ProcessId, cfg: SystemConfig) -> Self {
        NullRegister { id, cfg, value: 0 }
    }
}

/// Message type for [`NullRegister`] (never sent).
#[derive(Clone, Debug)]
pub enum NoMsg {}

impl WireMessage for NoMsg {
    fn kind(&self) -> &'static str {
        match *self {}
    }
    fn cost(&self) -> MessageCost {
        match *self {}
    }
}

impl Automaton for NullRegister {
    type Value = u64;
    type Msg = NoMsg;

    fn id(&self) -> ProcessId {
        self.id
    }
    fn config(&self) -> SystemConfig {
        self.cfg
    }
    fn on_invoke(&mut self, op_id: OpId, op: Operation<u64>, fx: &mut Effects<NoMsg, u64>) {
        match op {
            Operation::Write(v) => {
                self.value = v;
                fx.complete_write(op_id);
            }
            Operation::Read => fx.complete_read(op_id, self.value),
        }
    }
    fn on_message(&mut self, _from: ProcessId, msg: NoMsg, _fx: &mut Effects<NoMsg, u64>) {
        match msg {}
    }
    fn state_bits(&self) -> u64 {
        64
    }
}

/// A majority-echo automaton: a write broadcasts `PING` and completes once
/// `n − t` processes (counting itself) have echoed `PONG`; reads complete
/// locally. Exercises message delivery, delays and crash handling in the
/// engine. It is *not* atomic.
#[derive(Debug)]
pub struct MajorityEcho {
    id: ProcessId,
    cfg: SystemConfig,
    value: u64,
    pending: Option<(OpId, usize)>,
}

impl MajorityEcho {
    /// Creates the process.
    pub fn new(id: ProcessId, cfg: SystemConfig) -> Self {
        MajorityEcho {
            id,
            cfg,
            value: 0,
            pending: None,
        }
    }
}

/// Messages of [`MajorityEcho`].
#[derive(Clone, Debug)]
pub enum EchoMsg {
    /// Write announcement.
    Ping(u64),
    /// Acknowledgement.
    Pong,
}

impl WireMessage for EchoMsg {
    fn kind(&self) -> &'static str {
        match self {
            EchoMsg::Ping(_) => "PING",
            EchoMsg::Pong => "PONG",
        }
    }
    fn cost(&self) -> MessageCost {
        match self {
            EchoMsg::Ping(_) => MessageCost::new(1, 64),
            EchoMsg::Pong => MessageCost::new(1, 0),
        }
    }
    // Codec-capable so the engines' encode–decode fidelity mode (and the
    // TCP transport) can run the test automatons too: 1-bit tag, then the
    // value for pings — bit-for-bit the modeled cost.
    fn encoded_bits(&self) -> u64 {
        match self {
            EchoMsg::Ping(_) => 65,
            EchoMsg::Pong => 1,
        }
    }
    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        match self {
            EchoMsg::Ping(v) => {
                w.put_bit(false);
                w.put_bits(*v, 64);
            }
            EchoMsg::Pong => w.put_bit(true),
        }
        Ok(())
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        if r.get_bit()? {
            Ok(EchoMsg::Pong)
        } else {
            Ok(EchoMsg::Ping(r.get_bits(64)?))
        }
    }
}

impl Automaton for MajorityEcho {
    type Value = u64;
    type Msg = EchoMsg;

    fn id(&self) -> ProcessId {
        self.id
    }
    fn config(&self) -> SystemConfig {
        self.cfg
    }
    fn on_invoke(&mut self, op_id: OpId, op: Operation<u64>, fx: &mut Effects<EchoMsg, u64>) {
        match op {
            Operation::Write(v) => {
                self.value = v;
                // Count ourselves; a singleton system completes immediately.
                if self.cfg.quorum() <= 1 {
                    fx.complete_write(op_id);
                    return;
                }
                self.pending = Some((op_id, 1));
                for j in self.cfg.peers(self.id).collect::<Vec<_>>() {
                    fx.send(j, EchoMsg::Ping(v));
                }
            }
            Operation::Read => fx.complete_read(op_id, self.value),
        }
    }
    fn on_message(&mut self, from: ProcessId, msg: EchoMsg, fx: &mut Effects<EchoMsg, u64>) {
        match msg {
            EchoMsg::Ping(v) => {
                self.value = v;
                fx.send(from, EchoMsg::Pong);
            }
            EchoMsg::Pong => {
                if let Some((op_id, acks)) = self.pending.as_mut() {
                    *acks += 1;
                    if *acks >= self.cfg.quorum() {
                        let id = *op_id;
                        self.pending = None;
                        fx.complete_write(id);
                    }
                }
            }
        }
    }
    fn state_bits(&self) -> u64 {
        64
    }
}
