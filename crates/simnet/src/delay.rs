//! Message-delay models.
//!
//! Channels in the model are asynchronous: "while the transit time of each
//! message is finite, there is no upper bound on message transit times"
//! (§2.1). For *time-complexity* experiments the paper assumes transfer
//! delays bounded by Δ and instantaneous local computation; [`DelayModel`]
//! covers both regimes plus adversarial mixes that force reordering on the
//! non-FIFO channels (the situation the alternating-bit pattern of §3.3 and
//! the wait of Fig. 1 line 11 exist to survive).

use rand::rngs::StdRng;
use rand::Rng;

use crate::SimTime;

/// Distribution of per-message transit delays.
///
/// Sampling is per message and independent per sample, so any model with a
/// non-degenerate range yields non-FIFO behaviour (a later message can
/// overtake an earlier one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message takes exactly this long (the paper's synchronous-Δ
    /// regime used for the time-complexity rows of Table 1).
    Fixed(SimTime),
    /// Uniformly distributed in `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum delay.
        lo: SimTime,
        /// Maximum delay.
        hi: SimTime,
    },
    /// Mostly uniform in `[lo, hi]`, but with probability `spike_ppm`
    /// (parts-per-million) the delay is instead uniform in
    /// `[spike_lo, spike_hi]`. Models rare long-haul delays; with large
    /// spikes this is an aggressive reordering adversary.
    Spiky {
        /// Minimum normal delay.
        lo: SimTime,
        /// Maximum normal delay.
        hi: SimTime,
        /// Spike probability in parts-per-million.
        spike_ppm: u32,
        /// Minimum spike delay.
        spike_lo: SimTime,
        /// Maximum spike delay.
        spike_hi: SimTime,
    },
}

impl DelayModel {
    /// Samples a transit delay.
    ///
    /// Degenerate bounds are tolerated (`lo > hi` is treated as `lo == hi`),
    /// and a delay of at least 1 tick is enforced so no message is delivered
    /// at its send instant (processes never react to their own sends within
    /// the same handler execution).
    pub fn sample(&self, rng: &mut StdRng) -> SimTime {
        let raw = match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { lo, hi } => sample_range(rng, lo, hi),
            DelayModel::Spiky {
                lo,
                hi,
                spike_ppm,
                spike_lo,
                spike_hi,
            } => {
                if rng.gen_range(0..1_000_000u32) < spike_ppm {
                    sample_range(rng, spike_lo, spike_hi)
                } else {
                    sample_range(rng, lo, hi)
                }
            }
        };
        raw.max(1)
    }

    /// Upper bound of the delay distribution (the Δ this model realizes).
    pub fn max_delay(&self) -> SimTime {
        match *self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { lo, hi } => lo.max(hi).max(1),
            DelayModel::Spiky {
                lo, hi, spike_hi, ..
            } => lo.max(hi).max(spike_hi).max(1),
        }
    }
}

fn sample_range(rng: &mut StdRng, lo: SimTime, hi: SimTime) -> SimTime {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_fixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Fixed(500);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), 500);
        }
        assert_eq!(m.max_delay(), 500);
    }

    #[test]
    fn zero_fixed_is_clamped_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(DelayModel::Fixed(0).sample(&mut rng), 1);
        assert_eq!(DelayModel::Fixed(0).max_delay(), 1);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = DelayModel::Uniform { lo: 10, hi: 20 };
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let d = m.sample(&mut rng);
            assert!((10..=20).contains(&d));
            seen_lo |= d == 10;
            seen_hi |= d == 20;
        }
        assert!(seen_lo && seen_hi, "uniform should hit both bounds");
        assert_eq!(m.max_delay(), 20);
    }

    #[test]
    fn degenerate_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DelayModel::Uniform { lo: 7, hi: 7 };
        assert_eq!(m.sample(&mut rng), 7);
        // lo > hi treated as lo.
        let m = DelayModel::Uniform { lo: 9, hi: 2 };
        assert_eq!(m.sample(&mut rng), 9);
    }

    #[test]
    fn spiky_spikes_sometimes() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = DelayModel::Spiky {
            lo: 1,
            hi: 10,
            spike_ppm: 200_000, // 20%
            spike_lo: 1_000,
            spike_hi: 2_000,
        };
        let mut spikes = 0u32;
        for _ in 0..5_000 {
            let d = m.sample(&mut rng);
            if d >= 1_000 {
                spikes += 1;
            } else {
                assert!((1..=10).contains(&d));
            }
        }
        // 20% ± generous tolerance
        assert!((600..=1_600).contains(&spikes), "spikes={spikes}");
        assert_eq!(m.max_delay(), 2_000);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = DelayModel::Uniform { lo: 1, hi: 1_000 };
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| m.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
