//! Engine edge cases: tie-breaking, degenerate systems, crash timing
//! corners, and guard rails.

use twobit_proto::{Operation, SystemConfig};
use twobit_simnet::testutil::{MajorityEcho, NullRegister};
use twobit_simnet::{ClientPlan, CrashPlan, CrashPoint, DelayModel, PlannedOp, SimBuilder};

#[test]
fn empty_simulation_is_quiescent_immediately() {
    let cfg = SystemConfig::new(3, 1).unwrap();
    let sim = SimBuilder::new(cfg).build(|id| NullRegister::new(id, cfg));
    let report = sim.run().unwrap();
    assert_eq!(report.events, 0);
    assert_eq!(report.final_time, 0);
    assert!(report.history.is_empty());
    assert!(report.all_live_ops_completed());
}

#[test]
fn singleton_system_runs() {
    let cfg = SystemConfig::new(1, 0).unwrap();
    let mut sim = SimBuilder::new(cfg).build(|id| MajorityEcho::new(id, cfg));
    sim.client_plan(
        0,
        ClientPlan::ops([Operation::Write(1u64), Operation::Read]),
    );
    let report = sim.run().unwrap();
    assert!(report.all_live_ops_completed());
    assert_eq!(report.stats.total_sent(), 0, "nobody to talk to");
}

#[test]
fn same_instant_events_processed_in_schedule_order() {
    // Two processes invoke at the exact same virtual instant; the run must
    // be deterministic and identical across repetitions.
    let cfg = SystemConfig::new(3, 1).unwrap();
    let run = || {
        let mut sim = SimBuilder::new(cfg)
            .seed(3)
            .delay(DelayModel::Fixed(10))
            .build(|id| MajorityEcho::new(id, cfg));
        sim.client_plan(
            0,
            ClientPlan::ops([Operation::Write(1u64)]).starting_at(100),
        );
        sim.client_plan(
            1,
            ClientPlan::ops([Operation::Write(2u64)]).starting_at(100),
        );
        let r = sim.run().unwrap();
        (
            r.events,
            r.final_time,
            r.history
                .records
                .iter()
                .map(twobit_proto::OpRecord::response_at)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn crash_at_time_zero_prevents_everything() {
    let cfg = SystemConfig::new(3, 1).unwrap();
    let mut sim = SimBuilder::new(cfg)
        .crashes(CrashPlan::none().with_crash(0, CrashPoint::AtTime(0)))
        .build(|id| MajorityEcho::new(id, cfg));
    sim.client_plan(0, ClientPlan::ops([Operation::Write(1u64)]));
    let report = sim.run().unwrap();
    // The crash is scheduled before the invocation (same instant, earlier
    // sequence number), so the write is never even invoked.
    assert!(report.history.is_empty());
    assert!(report.all_live_ops_completed(), "crashed ops are exempt");
    assert_eq!(report.stats.total_sent(), 0);
    assert!(report.crashed[0]);
}

#[test]
fn on_step_crash_with_zero_sends_is_total_silence() {
    let cfg = SystemConfig::new(3, 1).unwrap();
    let mut sim = SimBuilder::new(cfg)
        .crashes(CrashPlan::none().with_crash(
            0,
            CrashPoint::OnStep {
                step: 1,
                sends_allowed: 0,
            },
        ))
        .build(|id| MajorityEcho::new(id, cfg));
    sim.client_plan(0, ClientPlan::ops([Operation::Write(1u64)]));
    let report = sim.run().unwrap();
    assert_eq!(report.stats.total_sent(), 0);
    assert!(report.crashed[0]);
}

#[test]
fn on_step_crash_never_reached_is_harmless() {
    let cfg = SystemConfig::new(3, 1).unwrap();
    let mut sim = SimBuilder::new(cfg)
        .crashes(CrashPlan::none().with_crash(
            2,
            CrashPoint::OnStep {
                step: 10_000,
                sends_allowed: 0,
            },
        ))
        .build(|id| MajorityEcho::new(id, cfg));
    sim.client_plan(0, ClientPlan::ops([Operation::Write(1u64)]));
    let report = sim.run().unwrap();
    assert!(!report.crashed[2], "step never reached → no crash");
    assert!(report.all_live_ops_completed());
}

#[test]
#[should_panic(expected = "already has a client plan")]
fn double_plan_assignment_rejected() {
    let cfg = SystemConfig::new(3, 1).unwrap();
    let mut sim = SimBuilder::new(cfg).build(|id| NullRegister::new(id, cfg));
    sim.client_plan(0, ClientPlan::ops([Operation::Write(1u64)]));
    sim.client_plan(0, ClientPlan::ops([Operation::<u64>::Read]));
}

#[test]
fn time_limit_trips() {
    let cfg = SystemConfig::new(3, 1).unwrap();
    let mut sim = SimBuilder::new(cfg)
        .delay(DelayModel::Fixed(1_000))
        .max_time(500)
        .build(|id| MajorityEcho::new(id, cfg));
    sim.client_plan(0, ClientPlan::ops([Operation::Write(1u64)]));
    let err = sim.run().unwrap_err();
    assert!(err.to_string().contains("time limit"), "{err}");
}

#[test]
fn plans_with_large_offsets_keep_virtual_time_cheap() {
    // A month of virtual nanoseconds costs nothing to skip.
    let cfg = SystemConfig::new(3, 1).unwrap();
    let mut sim = SimBuilder::new(cfg).build(|id| NullRegister::new(id, cfg));
    sim.client_plan(
        0,
        ClientPlan::new(vec![PlannedOp::after(
            2_600_000_000_000_000,
            Operation::Write(1u64),
        )]),
    );
    let report = sim.run().unwrap();
    assert_eq!(report.final_time, 2_600_000_000_000_000);
    assert_eq!(report.events, 1);
}
