//! Timestamp-order linearizability checking for **multi-writer** register
//! histories with distinct written values.
//!
//! The SWMR fast checker ([`crate::swmr`]) leans on the writer being
//! sequential: the write order is given, and only the reads need placing.
//! A multi-writer history has no given write order — concurrent writes may
//! linearize either way — so the checker must *resolve* one. For histories
//! whose written values are pairwise distinct (what every workload in this
//! workspace produces; the MWMR ABD automaton tags each write with a unique
//! `Timestamp` precisely so its effects are attributable), resolution is
//! polynomial: every constraint a legal linearization must satisfy is of
//! the form "write `a` linearizes before write `b`", derived from real time
//! and from what the reads observed:
//!
//! 1. **write → write**: `a` responded before `b` was invoked;
//! 2. **observer → write**: a read of `a`'s value responded before `b` was
//!    invoked (the reader saw `a` as freshest while `b` had not started);
//! 3. **write → observed**: `a` responded before a read of `b`'s value was
//!    invoked (`a` was complete, yet the read saw `b` — so `b` is at least
//!    as new);
//! 4. **observer → observer**: a read of `a`'s value responded before a
//!    read of `b`'s value was invoked, `a ≠ b` (the multi-writer
//!    generalization of the SWMR new/old inversion claim).
//!
//! A history is linearizable **iff** each read's write was invoked by the
//! read's response (the multi-writer Claim 1) and the constraint digraph
//! over writes is acyclic: any topological order is then a legal
//! *timestamp order* — insert each read after its write (same-write reads
//! by invocation time) and every real-time precedence is respected by
//! construction of the edges. Conversely every edge is forced, so a cycle
//! certifies non-linearizability — and is what the checker reports,
//! pinpointing the writes whose observed orders contradict
//! ([`MwmrViolation::OrderCycle`]). Edges that would order a write before
//! the initial value's pseudo-write are immediate violations with sharper
//! names ([`MwmrViolation::StaleRead`] /
//! [`MwmrViolation::NewOldInversion`]).
//!
//! Pending operations: a pending read constrains nothing; a pending write
//! never generates outgoing real-time edges (it has no response) and can
//! always be linearized at a position consistent with its incoming edges,
//! so — unlike the Wing–Gong search — no subset enumeration is needed.
//! The checker runs in `O((reads + writes)²)` worst case, entirely
//! polynomial; the `wg` search cross-validates it on small histories in
//! the test suite.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

use twobit_proto::{History, OpId, Operation, RegisterId, RegisterMode, ShardedHistory};

use crate::swmr::{self, SwmrVerdict};

/// Successful multi-writer verdict: counts plus the resolved write order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MwmrVerdict {
    /// Number of completed reads validated.
    pub reads_checked: usize,
    /// Number of writes in the history (complete or pending).
    pub writes: usize,
    /// Number of reads that returned the initial value.
    pub initial_reads: usize,
    /// The resolved timestamp order: every write's `OpId` in a
    /// linearization-compatible total order (concurrency broken by
    /// invocation time, then `OpId`, so the order is deterministic).
    pub write_order: Vec<OpId>,
}

/// Why a multi-writer history is not linearizable (or not checkable by
/// this procedure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MwmrViolation {
    /// Two writes wrote the same value (or a write wrote the initial
    /// value), so reads cannot be attributed unambiguously; use the
    /// Wing–Gong checker instead.
    AmbiguousValues,
    /// A read returned a value that was never written and is not the
    /// initial value.
    UnknownValue {
        /// The offending read.
        read: OpId,
    },
    /// A read returned a value whose write started only after the read had
    /// already responded.
    ReadFromFuture {
        /// The offending read.
        read: OpId,
        /// The value's write.
        write: OpId,
    },
    /// A read returned the initial value although some write had already
    /// completed before the read began.
    StaleRead {
        /// The offending read.
        read: OpId,
        /// A write completed before the read's invocation.
        overwritten_by: OpId,
    },
    /// A read of the initial value was invoked after a read of some
    /// write's value had responded — the later read travelled back past
    /// the pseudo-write of the initial value.
    NewOldInversion {
        /// The earlier read (saw a written value).
        earlier: OpId,
        /// The later read (saw the initial value).
        later: OpId,
    },
    /// The derived before-constraints between writes are cyclic: no total
    /// write order (and hence no linearization) exists. The cycle lists
    /// the write `OpId`s in constraint order — e.g. two concurrent writes
    /// observed in opposite orders by two readers produce the 2-cycle
    /// `[a, b]`.
    OrderCycle {
        /// Writes forming the contradictory cycle, in edge order.
        writes: Vec<OpId>,
    },
}

impl fmt::Display for MwmrViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MwmrViolation::AmbiguousValues => {
                write!(f, "duplicate written values; attribution ambiguous")
            }
            MwmrViolation::UnknownValue { read } => {
                write!(f, "read {read} returned a never-written value")
            }
            MwmrViolation::ReadFromFuture { read, write } => {
                write!(f, "read {read} returned write {write} from the future")
            }
            MwmrViolation::StaleRead {
                read,
                overwritten_by,
            } => write!(
                f,
                "read {read} returned the initial value after write {overwritten_by} completed"
            ),
            MwmrViolation::NewOldInversion { earlier, later } => write!(
                f,
                "new/old inversion: read {earlier} saw a written value, later read {later} \
                 saw the initial value"
            ),
            MwmrViolation::OrderCycle { writes } => {
                write!(f, "contradictory write order: ")?;
                for w in writes {
                    write!(f, "{w} < ")?;
                }
                match writes.first() {
                    Some(first) => write!(f, "{first}"),
                    None => write!(f, "(empty cycle)"),
                }
            }
        }
    }
}

impl std::error::Error for MwmrViolation {}

/// Checks that a multi-writer register history is linearizable.
///
/// # Errors
///
/// Returns the first [`MwmrViolation`] found; see the module docs for the
/// exact conditions.
pub fn check<V: Clone + Eq + Hash>(history: &History<V>) -> Result<MwmrVerdict, MwmrViolation> {
    // --- Collect writes; attribute values. Index 0 is the initial value's
    // pseudo-write; real writes are 1..=k into `writes`. --------------------
    let writes: Vec<&twobit_proto::OpRecord<V>> =
        history.records.iter().filter(|r| r.op.is_write()).collect();
    let mut index_of: HashMap<&V, usize> = HashMap::with_capacity(writes.len() + 1);
    index_of.insert(&history.initial, 0);
    for (i, w) in writes.iter().enumerate() {
        let v = w.op.written_value().expect("writes carry a value");
        if index_of.insert(v, i + 1).is_some() {
            return Err(MwmrViolation::AmbiguousValues);
        }
    }

    // --- Attribute completed reads. -----------------------------------------
    struct ReadView {
        op_id: OpId,
        invoked_at: u64,
        response_at: u64,
        /// 0 = initial value, i ≥ 1 = `writes[i - 1]`.
        x: usize,
    }
    let mut reads: Vec<ReadView> = Vec::new();
    for r in &history.records {
        if !matches!(r.op, Operation::Read) {
            continue;
        }
        let Some((resp, outcome)) = &r.completed else {
            continue; // pending reads constrain nothing
        };
        let v = outcome.read_value().expect("read outcome carries a value");
        let x = *index_of
            .get(v)
            .ok_or(MwmrViolation::UnknownValue { read: r.op_id })?;
        reads.push(ReadView {
            op_id: r.op_id,
            invoked_at: r.invoked_at,
            response_at: *resp,
            x,
        });
    }

    // --- Multi-writer Claim 1: no read from the future. ---------------------
    for r in &reads {
        if r.x > 0 && writes[r.x - 1].invoked_at > r.response_at {
            return Err(MwmrViolation::ReadFromFuture {
                read: r.op_id,
                write: writes[r.x - 1].op_id,
            });
        }
    }

    // --- Constraint digraph over write indices 1..=k. -----------------------
    // adj[a] holds every b with a forced "a linearizes before b" edge
    // (indices are 1-based; the initial pseudo-write never appears: edges
    // out of it are trivial, edges into it are reported above/below).
    let k = writes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k + 1];
    let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut add_edge = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
        if a != b && seen.insert((a, b)) {
            adj[a].push(b);
        }
    };

    // 1. write → write real-time precedence.
    for (i, wi) in writes.iter().enumerate() {
        let Some(resp) = wi.response_at() else {
            continue; // pending writes precede nothing
        };
        for (j, wj) in writes.iter().enumerate() {
            if i != j && resp < wj.invoked_at {
                add_edge(&mut adj, i + 1, j + 1);
            }
        }
    }
    // 2. + 3. read-induced write constraints.
    for r in &reads {
        for (j, wj) in writes.iter().enumerate() {
            let j1 = j + 1;
            if j1 == r.x {
                continue;
            }
            // Observer → write: the read saw x as freshest before w_j began.
            if r.response_at < wj.invoked_at && r.x > 0 {
                add_edge(&mut adj, r.x, j1);
            }
            // Write → observed: w_j was done, yet the read saw x.
            if let Some(resp) = wj.response_at() {
                if resp < r.invoked_at {
                    if r.x == 0 {
                        return Err(MwmrViolation::StaleRead {
                            read: r.op_id,
                            overwritten_by: wj.op_id,
                        });
                    }
                    add_edge(&mut adj, j1, r.x);
                }
            }
        }
    }
    // 4. observer → observer (read/read inversions across writes).
    for r1 in &reads {
        for r2 in &reads {
            if r1.x == r2.x || r1.response_at >= r2.invoked_at {
                continue;
            }
            if r2.x == 0 {
                // r1 saw a written value (x ≥ 1 — x == 0 is excluded by
                // r1.x != r2.x), then r2 saw the initial value.
                return Err(MwmrViolation::NewOldInversion {
                    earlier: r1.op_id,
                    later: r2.op_id,
                });
            }
            if r1.x > 0 {
                add_edge(&mut adj, r1.x, r2.x);
            }
        }
    }

    // --- Resolve the order: deterministic Kahn topological sort. ------------
    let mut indegree = vec![0usize; k + 1];
    for targets in &adj {
        for &b in targets {
            indegree[b] += 1;
        }
    }
    // Ready set keyed by (invoked_at, op_id) so concurrency resolves
    // deterministically (and sensibly: earlier-invoked writes first).
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>> = (1..=k)
        .filter(|&i| indegree[i] == 0)
        .map(|i| std::cmp::Reverse((writes[i - 1].invoked_at, writes[i - 1].op_id.raw(), i)))
        .collect();
    let mut write_order = Vec::with_capacity(k);
    while let Some(std::cmp::Reverse((_, _, a))) = ready.pop() {
        write_order.push(writes[a - 1].op_id);
        for &b in &adj[a] {
            indegree[b] -= 1;
            if indegree[b] == 0 {
                ready.push(std::cmp::Reverse((
                    writes[b - 1].invoked_at,
                    writes[b - 1].op_id.raw(),
                    b,
                )));
            }
        }
    }
    if write_order.len() < k {
        return Err(MwmrViolation::OrderCycle {
            writes: extract_cycle(&adj, &indegree, &writes),
        });
    }

    Ok(MwmrVerdict {
        reads_checked: reads.len(),
        writes: k,
        initial_reads: reads.iter().filter(|r| r.x == 0).count(),
        write_order,
    })
}

/// Finds one concrete cycle among the nodes Kahn's sort could not clear,
/// for pinpointed reporting. Every blocked node (`indegree > 0` at the
/// end) kept at least one never-popped — hence blocked — *predecessor*
/// (a blocked node may well be a sink downstream of the cycle, so the
/// walk must go backward, where it can never escape the blocked set and
/// must eventually revisit a node).
fn extract_cycle<V>(
    adj: &[Vec<usize>],
    indegree: &[usize],
    writes: &[&twobit_proto::OpRecord<V>],
) -> Vec<OpId> {
    let k = writes.len();
    let blocked: Vec<bool> = (0..=k).map(|i| i > 0 && indegree[i] > 0).collect();
    let start = (1..=k).find(|&i| blocked[i]).expect("a cycle exists");
    let mut path: Vec<usize> = vec![start];
    let mut on_path = vec![false; k + 1];
    on_path[start] = true;
    loop {
        let cur = *path.last().expect("path is never empty");
        let prev = (1..=k)
            .find(|&p| blocked[p] && adj[p].contains(&cur))
            .expect("blocked nodes keep a blocked predecessor");
        if on_path[prev] {
            let from = path.iter().position(|&n| n == prev).expect("on path");
            // `path` walks predecessors (edges point path[i+1] → path[i]);
            // reverse the tail so the reported cycle reads in edge order.
            return path[from..]
                .iter()
                .rev()
                .map(|&i| writes[i - 1].op_id)
                .collect();
        }
        on_path[prev] = true;
        path.push(prev);
    }
}

/// A [`check`] failure localized to one register of a sharded run —
/// the multi-writer counterpart of [`swmr::ShardedViolation`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedViolation {
    /// The offending register.
    pub reg: RegisterId,
    /// Its violation.
    pub violation: MwmrViolation,
}

impl fmt::Display for ShardedViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register {}: {}", self.reg, self.violation)
    }
}

impl std::error::Error for ShardedViolation {}

/// Checks every register of a sharded run as a multi-writer register.
///
/// # Errors
///
/// The first per-register violation, tagged with its register id.
pub fn check_sharded<V: Clone + Eq + Hash>(
    sharded: &ShardedHistory<V>,
) -> Result<BTreeMap<RegisterId, MwmrVerdict>, ShardedViolation> {
    let mut verdicts = BTreeMap::new();
    for (reg, history) in sharded.iter() {
        let verdict = check(history).map_err(|violation| ShardedViolation { reg, violation })?;
        verdicts.insert(reg, verdict);
    }
    Ok(verdicts)
}

/// Per-register verdict of a mode-dispatched sharded check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegisterVerdict {
    /// The register was checked as SWMR.
    Swmr(SwmrVerdict),
    /// The register was checked as MWMR.
    Mwmr(MwmrVerdict),
}

impl RegisterVerdict {
    /// Number of completed reads validated, whichever checker ran.
    pub fn reads_checked(&self) -> usize {
        match self {
            RegisterVerdict::Swmr(v) => v.reads_checked,
            RegisterVerdict::Mwmr(v) => v.reads_checked,
        }
    }

    /// Number of writes in the history, whichever checker ran.
    pub fn writes(&self) -> usize {
        match self {
            RegisterVerdict::Swmr(v) => v.writes,
            RegisterVerdict::Mwmr(v) => v.writes,
        }
    }
}

/// A violation from either checker, tagged with the mode that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModeViolation {
    /// The SWMR fast checker rejected the history.
    Swmr(swmr::AtomicityViolation),
    /// The MWMR timestamp-order checker rejected the history.
    Mwmr(MwmrViolation),
}

impl fmt::Display for ModeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModeViolation::Swmr(v) => write!(f, "swmr: {v}"),
            ModeViolation::Mwmr(v) => write!(f, "mwmr: {v}"),
        }
    }
}

/// A mode-dispatched per-register failure of a sharded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedModeViolation {
    /// The offending register.
    pub reg: RegisterId,
    /// Its violation, tagged with the checker that found it.
    pub violation: ModeViolation,
}

impl fmt::Display for ShardedModeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register {}: {}", self.reg, self.violation)
    }
}

impl std::error::Error for ShardedModeViolation {}

/// Checks every register of a sharded run with the checker its declared
/// [`RegisterMode`] requires: SWMR registers go to the Lemma-10 fast
/// procedure, MWMR registers to the timestamp-order checker. Registers
/// absent from `modes` default to SWMR. This is the verification entry
/// point for a mixed `RegisterSpace` — pass
/// `RegisterSpace::histories()` and `RegisterSpace::modes()`.
///
/// # Errors
///
/// The first per-register violation, tagged with its register id and the
/// checker that found it.
pub fn check_sharded_modes<V: Clone + Eq + Hash>(
    sharded: &ShardedHistory<V>,
    modes: &BTreeMap<RegisterId, RegisterMode>,
) -> Result<BTreeMap<RegisterId, RegisterVerdict>, ShardedModeViolation> {
    let mut verdicts = BTreeMap::new();
    for (reg, history) in sharded.iter() {
        let mode = modes.get(&reg).copied().unwrap_or_default();
        let verdict = match mode {
            // Oh-RAM keeps SWMR's writer discipline and correctness
            // contract — only the read's message-delay budget differs — so
            // its histories face the very same Lemma-10 fast procedure.
            RegisterMode::Swmr | RegisterMode::OhRam => swmr::check(history)
                .map(RegisterVerdict::Swmr)
                .map_err(|v| ShardedModeViolation {
                    reg,
                    violation: ModeViolation::Swmr(v),
                })?,
            RegisterMode::Mwmr => {
                check(history)
                    .map(RegisterVerdict::Mwmr)
                    .map_err(|v| ShardedModeViolation {
                        reg,
                        violation: ModeViolation::Mwmr(v),
                    })?
            }
        };
        verdicts.insert(reg, verdict);
    }
    Ok(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wg;
    use twobit_proto::{OpOutcome, OpRecord, ProcessId};

    fn w(op_id: u64, proc: usize, inv: u64, resp: u64, v: u64) -> OpRecord<u64> {
        OpRecord {
            op_id: OpId::new(op_id),
            proc: ProcessId::new(proc),
            op: Operation::Write(v),
            invoked_at: inv,
            completed: Some((resp, OpOutcome::Written)),
        }
    }

    fn w_pending(op_id: u64, proc: usize, inv: u64, v: u64) -> OpRecord<u64> {
        OpRecord {
            op_id: OpId::new(op_id),
            proc: ProcessId::new(proc),
            op: Operation::Write(v),
            invoked_at: inv,
            completed: None,
        }
    }

    fn r(op_id: u64, proc: usize, inv: u64, resp: u64, v: u64) -> OpRecord<u64> {
        OpRecord {
            op_id: OpId::new(op_id),
            proc: ProcessId::new(proc),
            op: Operation::Read,
            invoked_at: inv,
            completed: Some((resp, OpOutcome::ReadValue(v))),
        }
    }

    fn hist(records: Vec<OpRecord<u64>>) -> History<u64> {
        History {
            initial: 0,
            records,
            recoveries: vec![],
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let v = check(&hist(vec![])).unwrap();
        assert_eq!(v, MwmrVerdict::default());
    }

    #[test]
    fn two_writers_sequential() {
        let h = hist(vec![
            w(0, 0, 0, 10, 1),
            r(1, 2, 11, 20, 1),
            w(2, 1, 21, 30, 2),
            r(3, 3, 31, 40, 2),
        ]);
        let v = check(&h).unwrap();
        assert_eq!(v.writes, 2);
        assert_eq!(v.reads_checked, 2);
        assert_eq!(v.write_order, vec![OpId::new(0), OpId::new(2)]);
    }

    #[test]
    fn concurrent_writes_resolve_by_observation() {
        // w(1) and w(2) overlap; a reader sees 2 then (later) another
        // reader sees... also 2. Legal: order 1 < 2.
        let h = hist(vec![
            w(0, 0, 0, 50, 1),
            w(1, 1, 0, 50, 2),
            r(2, 2, 60, 70, 2),
        ]);
        let v = check(&h).unwrap();
        assert_eq!(v.write_order.last(), Some(&OpId::new(1)));
        // And the mirror image resolves the other way.
        let h = hist(vec![
            w(0, 0, 0, 50, 1),
            w(1, 1, 0, 50, 2),
            r(2, 2, 60, 70, 1),
        ]);
        let v = check(&h).unwrap();
        assert_eq!(v.write_order.last(), Some(&OpId::new(0)));
    }

    #[test]
    fn opposite_observation_orders_are_a_pinpointed_cycle() {
        // Two concurrent writes; reader p2 sees 1 then 2, reader p3 sees
        // 2 then 1 (all four reads pairwise non-overlapping per reader,
        // and the cross-reader reads ordered so both directions are
        // forced). The derived constraints w1 < w2 (p2) and w2 < w1 (p3)
        // contradict.
        let h = hist(vec![
            w(0, 0, 0, 100, 1),
            w(1, 1, 0, 100, 2),
            r(2, 2, 10, 20, 1),
            r(3, 2, 30, 40, 2),
            r(4, 3, 10, 20, 2),
            r(5, 3, 30, 40, 1),
        ]);
        let err = check(&h).unwrap_err();
        let MwmrViolation::OrderCycle { writes } = err else {
            panic!("expected an order cycle, got {err}");
        };
        let mut cycle = writes.clone();
        cycle.sort();
        assert_eq!(cycle, vec![OpId::new(0), OpId::new(1)]);
        // The independent ground-truth search agrees.
        assert!(wg::check_register(&h).is_err());
    }

    #[test]
    fn respects_write_real_time_order() {
        // w(1) completes before w(2) starts: a later read may never see 1.
        let h = hist(vec![
            w(0, 0, 0, 10, 1),
            w(1, 1, 20, 30, 2),
            r(2, 2, 40, 50, 1),
        ]);
        assert!(matches!(check(&h), Err(MwmrViolation::OrderCycle { .. })));
        assert!(wg::check_register(&h).is_err());
    }

    #[test]
    fn stale_initial_read_is_pinpointed() {
        let h = hist(vec![w(0, 0, 0, 10, 1), r(1, 1, 20, 30, 0)]);
        assert_eq!(
            check(&h),
            Err(MwmrViolation::StaleRead {
                read: OpId::new(1),
                overwritten_by: OpId::new(0)
            })
        );
    }

    #[test]
    fn initial_inversion_is_pinpointed() {
        // Both reads overlap the write, but the second starts after the
        // first responded and goes backward to the initial value.
        let h = hist(vec![
            w(0, 0, 0, 100, 1),
            r(1, 1, 10, 20, 1),
            r(2, 2, 30, 40, 0),
        ]);
        assert_eq!(
            check(&h),
            Err(MwmrViolation::NewOldInversion {
                earlier: OpId::new(1),
                later: OpId::new(2)
            })
        );
    }

    #[test]
    fn read_from_future_is_pinpointed() {
        let h = hist(vec![r(0, 1, 0, 5, 1), w(1, 0, 10, 20, 1)]);
        assert_eq!(
            check(&h),
            Err(MwmrViolation::ReadFromFuture {
                read: OpId::new(0),
                write: OpId::new(1)
            })
        );
    }

    #[test]
    fn unknown_and_ambiguous_values_are_rejected() {
        let h = hist(vec![w(0, 0, 0, 10, 1), r(1, 1, 20, 30, 9)]);
        assert_eq!(
            check(&h),
            Err(MwmrViolation::UnknownValue { read: OpId::new(1) })
        );
        let h = hist(vec![w(0, 0, 0, 10, 5), w(1, 1, 20, 30, 5)]);
        assert_eq!(check(&h), Err(MwmrViolation::AmbiguousValues));
        let h = hist(vec![w(0, 0, 0, 10, 0)]);
        assert_eq!(check(&h), Err(MwmrViolation::AmbiguousValues));
    }

    #[test]
    fn pending_writes_need_no_subset_search() {
        // A pending write may be observed...
        let h = hist(vec![
            w(0, 0, 0, 10, 1),
            w_pending(1, 1, 20, 2),
            r(2, 2, 30, 40, 2),
        ]);
        check(&h).unwrap();
        // ...or not, even much later...
        let h = hist(vec![
            w(0, 0, 0, 10, 1),
            w_pending(1, 1, 20, 2),
            r(2, 2, 30, 40, 1),
        ]);
        check(&h).unwrap();
        // ...but a read that responded before its invocation cannot.
        let h = hist(vec![
            w(0, 0, 0, 10, 1),
            w_pending(1, 1, 20, 2),
            r(2, 2, 5, 15, 2),
        ]);
        assert!(check(&h).is_err());
    }

    #[test]
    fn concurrent_reads_of_concurrent_writes_any_order() {
        // Overlapping reads impose nothing on each other.
        let h = hist(vec![
            w(0, 0, 0, 100, 1),
            w(1, 1, 0, 100, 2),
            r(2, 2, 10, 60, 1),
            r(3, 3, 20, 70, 2),
            r(4, 4, 30, 80, 1),
        ]);
        check(&h).unwrap();
        assert!(wg::check_register(&h).is_ok());
    }

    #[test]
    fn three_writers_ring_is_a_cycle() {
        // Three concurrent writes observed pairwise in a rotation:
        // 1 < 2 (p3), 2 < 3 (p4), 3 < 1 (p0 reading after crash of its
        // own write? — just a fifth process).
        let h = hist(vec![
            w(0, 0, 0, 100, 1),
            w(1, 1, 0, 100, 2),
            w(2, 2, 0, 100, 3),
            r(3, 3, 10, 20, 1),
            r(4, 3, 30, 40, 2),
            r(5, 4, 10, 20, 2),
            r(6, 4, 30, 40, 3),
            r(7, 5, 10, 20, 3),
            r(8, 5, 30, 40, 1),
        ]);
        let err = check(&h).unwrap_err();
        let MwmrViolation::OrderCycle { writes } = err else {
            panic!("expected a cycle, got {err}");
        };
        assert!(writes.len() >= 2 && writes.len() <= 3, "{writes:?}");
        assert!(wg::check_register(&h).is_err());
    }

    #[test]
    fn sharded_check_tags_the_register() {
        let good = hist(vec![w(0, 0, 0, 10, 1), r(1, 1, 11, 20, 1)]);
        let bad = hist(vec![w(0, 0, 0, 10, 1), r(1, 1, 20, 30, 0)]);
        let r0 = RegisterId::new(0);
        let r1 = RegisterId::new(1);
        let mixed = ShardedHistory::from_tagged(
            0u64,
            [r0, r1],
            good.records
                .iter()
                .map(|rec| (r0, rec.clone()))
                .chain(bad.records.iter().map(|rec| (r1, rec.clone())))
                .collect::<Vec<_>>(),
        );
        let err = check_sharded(&mixed).unwrap_err();
        assert_eq!(err.reg, r1);
        assert!(matches!(err.violation, MwmrViolation::StaleRead { .. }));
    }

    #[test]
    fn mode_dispatch_routes_per_register() {
        // r0 is a legal SWMR history; r1 is multi-writer — fine for the
        // MWMR checker, rejected by the SWMR one. The dispatch must accept
        // the pair exactly when r1 is declared Mwmr.
        let swmr_h = hist(vec![w(0, 0, 0, 10, 1), r(1, 1, 11, 20, 1)]);
        let mwmr_h = hist(vec![
            w(0, 0, 0, 10, 1),
            w(1, 1, 20, 30, 2),
            r(2, 2, 31, 40, 2),
        ]);
        let r0 = RegisterId::new(0);
        let r1 = RegisterId::new(1);
        let sharded = ShardedHistory::from_tagged(
            0u64,
            [r0, r1],
            swmr_h
                .records
                .iter()
                .map(|rec| (r0, rec.clone()))
                .chain(mwmr_h.records.iter().map(|rec| (r1, rec.clone())))
                .collect::<Vec<_>>(),
        );
        let modes: BTreeMap<_, _> = [(r0, RegisterMode::Swmr), (r1, RegisterMode::Mwmr)].into();
        let verdicts = check_sharded_modes(&sharded, &modes).unwrap();
        assert!(matches!(verdicts[&r0], RegisterVerdict::Swmr(_)));
        assert!(matches!(verdicts[&r1], RegisterVerdict::Mwmr(_)));
        assert_eq!(verdicts[&r1].writes(), 2);

        // Declared SWMR, the multi-writer register is rejected — and the
        // error names both the register and the checker.
        let all_swmr: BTreeMap<_, _> = [(r0, RegisterMode::Swmr)].into();
        let err = check_sharded_modes(&sharded, &all_swmr).unwrap_err();
        assert_eq!(err.reg, r1);
        assert!(matches!(
            err.violation,
            ModeViolation::Swmr(swmr::AtomicityViolation::MultipleWriters { .. })
        ));
    }

    #[test]
    fn swmr_histories_pass_the_mwmr_checker_too() {
        // SWMR ⊂ MWMR: anything the fast checker accepts, this one must.
        let h = hist(vec![
            w(0, 0, 0, 10, 1),
            r(1, 1, 11, 20, 1),
            w(2, 0, 21, 30, 2),
            r(3, 2, 31, 40, 2),
        ]);
        swmr::check(&h).unwrap();
        let v = check(&h).unwrap();
        assert_eq!(v.writes, 2);
        assert_eq!(v.initial_reads, 0);
    }
}
