//! Linearizability (atomicity) checking for read/write register histories.
//!
//! The consistency condition of the paper (§2.2) is Lamport's atomicity,
//! equivalently linearizability (Herlihy & Wing 1990): all operations —
//! except possibly, for each faulty process, the last operation it invoked —
//! appear as if executed sequentially, respecting real-time order, with every
//! read returning the closest preceding write (or the initial value).
//!
//! Three checkers are provided:
//!
//! * [`swmr`] — a specialized polynomial-time decision procedure for
//!   **single-writer** histories with distinct written values. Its three
//!   conditions are exactly the three claims of the paper's Lemma 10
//!   (no read from the future, no overwritten read, no new/old inversion),
//!   which are proved there to characterize SWMR atomicity.
//! * [`mwmr`] — the polynomial **multi-writer** procedure for histories
//!   with distinct written values: it resolves concurrent writes into a
//!   timestamp order from real-time and observation constraints (a
//!   constraint digraph over writes; a cycle certifies — and pinpoints —
//!   non-linearizability). [`mwmr::check_sharded_modes`] dispatches a
//!   sharded run's registers to [`swmr`] or [`mwmr`] per their declared
//!   [`RegisterMode`](twobit_proto::RegisterMode).
//! * [`wg`] — the general Wing–Gong search (with state memoization), usable
//!   for any history and as an independent cross-check of both specialized
//!   checkers on small histories.
//!
//! # Examples
//!
//! ```
//! use twobit_lincheck::swmr;
//! use twobit_proto::{History, OpId, OpOutcome, OpRecord, Operation, ProcessId};
//!
//! let mut h = History::new(0u64);
//! // w(1) at [0,10], then a read at [20,30] returning 1: atomic.
//! h.records.push(OpRecord {
//!     op_id: OpId::new(0), proc: ProcessId::new(0),
//!     op: Operation::Write(1), invoked_at: 0,
//!     completed: Some((10, OpOutcome::Written)),
//! });
//! h.records.push(OpRecord {
//!     op_id: OpId::new(1), proc: ProcessId::new(1),
//!     op: Operation::Read, invoked_at: 20,
//!     completed: Some((30, OpOutcome::ReadValue(1))),
//! });
//! let verdict = swmr::check(&h)?;
//! assert_eq!(verdict.reads_checked, 1);
//! # Ok::<(), twobit_lincheck::swmr::AtomicityViolation>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mwmr;
pub mod swmr;
pub mod wg;

pub use mwmr::{
    check as check_mwmr, check_sharded as check_mwmr_sharded, check_sharded_modes, ModeViolation,
    MwmrVerdict, MwmrViolation, RegisterVerdict, ShardedModeViolation,
    ShardedViolation as MwmrShardedViolation,
};
pub use swmr::{
    check as check_swmr, check_regular as check_swmr_regular, check_sharded as check_swmr_sharded,
    AtomicityViolation, ShardedViolation, SwmrVerdict,
};
pub use wg::{check_register as check_wg, WgError};
