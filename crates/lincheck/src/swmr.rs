//! Specialized atomicity checker for single-writer histories.
//!
//! For an SWMR register whose writes carry pairwise-distinct values, a
//! history is atomic **iff** every completed read `r`, returning the value
//! of the `x(r)`-th write (`x = 0` meaning the initial value), satisfies:
//!
//! 1. **No read from the future** (Lemma 10, Claim 1): the `x(r)`-th write
//!    was invoked no later than `r` responded.
//! 2. **No overwritten read** (Claim 2): `x(r) ≥ low(r)`, where `low(r)` is
//!    the index of the last write *completed* before `r` was invoked.
//! 3. **No new/old inversion** (Claim 3): if read `r1` responds before read
//!    `r2` is invoked, then `x(r1) ≤ x(r2)`.
//!
//! Sufficiency: order writes by index; insert each read after write `x(r)`,
//! ordering reads with equal `x` by invocation time. Conditions 1–3 make
//! this total order a legal linearization (the writer's own sequential order
//! covers write/write precedence; 1 covers read→write edges; 2 covers
//! write→read edges; 3 covers read→read edges). Necessity is Lemma 10.
//!
//! The checker runs in `O(m log m)` for `m` operations. Histories with
//! duplicate written values (or a write of the initial value) are rejected
//! as [`AtomicityViolation::AmbiguousValues`] — use [`crate::wg`] for those.
//!
//! Incomplete operations: a pending read constrains nothing; a pending write
//! may or may not have taken effect, so it never contributes to `low(r)` but
//! its value may legitimately be read (condition 1 still applies). The model
//! only exempts the *last* operation of each faulty process, and a single
//! writer can only have its last write pending, which is exactly what this
//! treatment covers — with one extension: when the history records a
//! crash-recovery of the writer ([`History::recoveries`]), a write orphaned
//! by the crash stays pending even though the recovered incarnation invokes
//! fresh writes afterwards, so a pending write is also legal when a recovery
//! of the writer falls between it and its successor.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

use twobit_proto::{History, OpId, Operation, RegisterId, ShardedHistory};

/// Successful verdict with summary statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwmrVerdict {
    /// Number of completed reads validated.
    pub reads_checked: usize,
    /// Number of writes in the history (complete or pending).
    pub writes: usize,
    /// Number of reads that returned the initial value.
    pub initial_reads: usize,
}

/// Why a history is not atomic (or not checkable by this procedure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtomicityViolation {
    /// Writes were invoked by more than one process — not an SWMR history.
    MultipleWriters {
        /// Two distinct writing processes observed.
        writers: (usize, usize),
    },
    /// Two writes overlap in real time — the (sequential) writer cannot do
    /// that; the history is malformed.
    OverlappingWrites {
        /// The earlier write.
        first: OpId,
        /// The overlapping write.
        second: OpId,
    },
    /// A write is pending but is not the writer's last operation.
    PendingWriteNotLast {
        /// The offending write.
        write: OpId,
    },
    /// Two writes wrote the same value (or a write wrote the initial
    /// value), so reads cannot be attributed unambiguously; use the
    /// Wing–Gong checker instead.
    AmbiguousValues,
    /// A read returned a value that was never written and is not the
    /// initial value.
    UnknownValue {
        /// The offending read.
        read: OpId,
    },
    /// Claim 1 violated: a read returned a value whose write started only
    /// after the read had already responded.
    ReadFromFuture {
        /// The offending read.
        read: OpId,
        /// Index of the value's write.
        write_index: usize,
    },
    /// Claim 2 violated: a read returned a value that was already
    /// overwritten before the read began.
    StaleRead {
        /// The offending read.
        read: OpId,
        /// Index the read returned.
        got: usize,
        /// Minimum index admissible at its invocation.
        required: usize,
    },
    /// Claim 3 violated: a later read returned an older value than an
    /// earlier, non-overlapping read (new/old inversion).
    NewOldInversion {
        /// The earlier read (returned the newer value).
        earlier: OpId,
        /// The later read (returned the older value).
        later: OpId,
        /// Index returned by the earlier read.
        earlier_index: usize,
        /// Index returned by the later read.
        later_index: usize,
    },
}

impl fmt::Display for AtomicityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicityViolation::MultipleWriters { writers } => {
                write!(
                    f,
                    "writes from two processes p{} and p{}",
                    writers.0, writers.1
                )
            }
            AtomicityViolation::OverlappingWrites { first, second } => {
                write!(f, "writes {first} and {second} overlap in real time")
            }
            AtomicityViolation::PendingWriteNotLast { write } => {
                write!(
                    f,
                    "pending write {write} is not the writer's last operation"
                )
            }
            AtomicityViolation::AmbiguousValues => {
                write!(f, "duplicate written values; attribution ambiguous")
            }
            AtomicityViolation::UnknownValue { read } => {
                write!(f, "read {read} returned a never-written value")
            }
            AtomicityViolation::ReadFromFuture { read, write_index } => {
                write!(
                    f,
                    "read {read} returned write #{write_index} from the future"
                )
            }
            AtomicityViolation::StaleRead {
                read,
                got,
                required,
            } => {
                write!(
                    f,
                    "read {read} returned overwritten write #{got} (needed ≥ #{required})"
                )
            }
            AtomicityViolation::NewOldInversion {
                earlier,
                later,
                earlier_index,
                later_index,
            } => write!(
                f,
                "new/old inversion: read {earlier} saw #{earlier_index}, later read {later} \
                 saw #{later_index}"
            ),
        }
    }
}

impl std::error::Error for AtomicityViolation {}

/// Checks that a single-writer history is atomic.
///
/// # Errors
///
/// Returns the first [`AtomicityViolation`] found; see the module docs for
/// the exact conditions.
pub fn check<V: Clone + Eq + Hash>(
    history: &History<V>,
) -> Result<SwmrVerdict, AtomicityViolation> {
    // --- Collect and validate writes. --------------------------------------
    let mut writes: Vec<&twobit_proto::OpRecord<V>> =
        history.records.iter().filter(|r| r.op.is_write()).collect();
    writes.sort_by_key(|w| w.invoked_at);

    if let Some(first) = writes.first() {
        let w0 = first.proc;
        if let Some(other) = writes.iter().find(|w| w.proc != w0) {
            return Err(AtomicityViolation::MultipleWriters {
                writers: (w0.index(), other.proc.index()),
            });
        }
    }
    for pair in writes.windows(2) {
        match pair[0].response_at() {
            Some(resp) => {
                if resp > pair[1].invoked_at {
                    return Err(AtomicityViolation::OverlappingWrites {
                        first: pair[0].op_id,
                        second: pair[1].op_id,
                    });
                }
            }
            None => {
                // A non-last pending write is only legal when the writer
                // crashed during it and completed a recovery before invoking
                // the successor: the crash orphaned the write (it stays
                // pending forever) and the rejoin re-admits the process as a
                // writer. Without such a recovery record the history is
                // malformed — a sequential writer cannot start a new write
                // while its previous one is in flight.
                if !history.recovered_between(pair[0].proc, pair[0].invoked_at, pair[1].invoked_at)
                {
                    return Err(AtomicityViolation::PendingWriteNotLast {
                        write: pair[0].op_id,
                    });
                }
            }
        }
    }

    // --- Value → index map (index 0 is the initial value). -----------------
    let mut index_of: HashMap<&V, usize> = HashMap::with_capacity(writes.len() + 1);
    index_of.insert(&history.initial, 0);
    for (i, w) in writes.iter().enumerate() {
        let v = w.op.written_value().expect("writes carry a value");
        if index_of.insert(v, i + 1).is_some() {
            return Err(AtomicityViolation::AmbiguousValues);
        }
    }

    // --- Attribute reads. ---------------------------------------------------
    struct ReadView {
        op_id: OpId,
        invoked_at: u64,
        response_at: u64,
        x: usize,
    }
    let mut reads: Vec<ReadView> = Vec::new();
    for r in &history.records {
        if !matches!(r.op, Operation::Read) {
            continue;
        }
        let Some((resp, outcome)) = &r.completed else {
            continue; // pending reads constrain nothing
        };
        let v = outcome.read_value().expect("read outcome carries a value");
        let x = *index_of
            .get(v)
            .ok_or(AtomicityViolation::UnknownValue { read: r.op_id })?;
        reads.push(ReadView {
            op_id: r.op_id,
            invoked_at: r.invoked_at,
            response_at: *resp,
            x,
        });
    }

    // --- Claim 1: no read from the future. ---------------------------------
    for r in &reads {
        if r.x > 0 {
            let w = writes[r.x - 1];
            if w.invoked_at > r.response_at {
                return Err(AtomicityViolation::ReadFromFuture {
                    read: r.op_id,
                    write_index: r.x,
                });
            }
        }
    }

    // --- Claim 2: no overwritten read. --------------------------------------
    // low(r) = number of writes completed strictly before r's invocation.
    // Sweep reads by invocation time against write completions.
    let mut read_order: Vec<usize> = (0..reads.len()).collect();
    read_order.sort_by_key(|&i| reads[i].invoked_at);
    let mut write_resp: Vec<(u64, usize)> = writes
        .iter()
        .enumerate()
        .filter_map(|(i, w)| w.response_at().map(|t| (t, i + 1)))
        .collect();
    write_resp.sort_unstable();
    {
        let mut low = 0usize;
        let mut wi = 0usize;
        for &i in &read_order {
            let r = &reads[i];
            while wi < write_resp.len() && write_resp[wi].0 < r.invoked_at {
                low = low.max(write_resp[wi].1);
                wi += 1;
            }
            if r.x < low {
                return Err(AtomicityViolation::StaleRead {
                    read: r.op_id,
                    got: r.x,
                    required: low,
                });
            }
        }
    }

    // --- Claim 3: no new/old inversion among reads. --------------------------
    // Sweep reads by invocation time; maintain the maximum index among reads
    // that *responded* strictly before the current read's invocation.
    {
        let mut by_resp: Vec<usize> = (0..reads.len()).collect();
        by_resp.sort_by_key(|&i| reads[i].response_at);
        let mut max_committed: Option<(usize, usize)> = None; // (x, read idx)
        let mut ri = 0usize;
        for &i in &read_order {
            let r = &reads[i];
            while ri < by_resp.len() && reads[by_resp[ri]].response_at < r.invoked_at {
                let c = by_resp[ri];
                if max_committed.is_none_or(|(x, _)| reads[c].x > x) {
                    max_committed = Some((reads[c].x, c));
                }
                ri += 1;
            }
            if let Some((x, c)) = max_committed {
                if r.x < x {
                    return Err(AtomicityViolation::NewOldInversion {
                        earlier: reads[c].op_id,
                        later: r.op_id,
                        earlier_index: x,
                        later_index: r.x,
                    });
                }
            }
        }
    }

    Ok(SwmrVerdict {
        reads_checked: reads.len(),
        writes: writes.len(),
        initial_reads: reads.iter().filter(|r| r.x == 0).count(),
    })
}

/// A [`check`] failure localized to one register of a sharded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedViolation {
    /// The offending register.
    pub reg: RegisterId,
    /// Its violation.
    pub violation: AtomicityViolation,
}

impl fmt::Display for ShardedViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register {}: {}", self.reg, self.violation)
    }
}

impl std::error::Error for ShardedViolation {}

/// Checks every register of a sharded run independently.
///
/// The registers of a [`RegisterSpace`](twobit_proto::RegisterSpace) are
/// independent atomic objects — each one is exactly the paper's protocol —
/// so a multi-register run is correct iff each per-register projection is
/// an atomic SWMR history.
///
/// # Errors
///
/// The first per-register violation, tagged with its register id.
pub fn check_sharded<V: Clone + Eq + Hash>(
    sharded: &ShardedHistory<V>,
) -> Result<BTreeMap<RegisterId, SwmrVerdict>, ShardedViolation> {
    let mut verdicts = BTreeMap::new();
    for (reg, history) in sharded.iter() {
        let verdict = check(history).map_err(|violation| ShardedViolation { reg, violation })?;
        verdicts.insert(reg, verdict);
    }
    Ok(verdicts)
}

/// Checks the weaker **regular**-register condition (Lamport 1986) for a
/// single-writer history: every read returns the value of a write
/// concurrent with it, or the value of the last write completed before it
/// (conditions 1–2 of the module docs, *without* the no-inversion
/// condition 3).
///
/// Atomic ⊂ regular: any history accepted by [`check`] is accepted here.
/// The gap between the two is exactly the new/old inversion — which is what
/// the algorithm's second read phase (Fig. 1 line 9) exists to close, as
/// the ablation experiments demonstrate.
///
/// # Errors
///
/// Returns the first violation of conditions 1–2 (or a structural defect).
pub fn check_regular<V: Clone + Eq + Hash>(
    history: &History<V>,
) -> Result<SwmrVerdict, AtomicityViolation> {
    match check(history) {
        Ok(v) => Ok(v),
        // The only condition regularity drops is Claim 3.
        Err(AtomicityViolation::NewOldInversion { .. }) => {
            // Re-derive the verdict counts without re-running claims 1-2
            // (they passed if the only failure was the inversion sweep —
            // `check` evaluates claim 3 last).
            Ok(SwmrVerdict {
                reads_checked: history.reads().count(),
                writes: history.writes().count(),
                initial_reads: 0, // not recomputed on this path
            })
        }
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_proto::{OpOutcome, OpRecord, ProcessId};

    fn w(op_id: u64, inv: u64, resp: u64, v: u64) -> OpRecord<u64> {
        OpRecord {
            op_id: OpId::new(op_id),
            proc: ProcessId::new(0),
            op: Operation::Write(v),
            invoked_at: inv,
            completed: Some((resp, OpOutcome::Written)),
        }
    }

    fn w_pending(op_id: u64, inv: u64, v: u64) -> OpRecord<u64> {
        OpRecord {
            op_id: OpId::new(op_id),
            proc: ProcessId::new(0),
            op: Operation::Write(v),
            invoked_at: inv,
            completed: None,
        }
    }

    fn r(op_id: u64, proc: usize, inv: u64, resp: u64, v: u64) -> OpRecord<u64> {
        OpRecord {
            op_id: OpId::new(op_id),
            proc: ProcessId::new(proc),
            op: Operation::Read,
            invoked_at: inv,
            completed: Some((resp, OpOutcome::ReadValue(v))),
        }
    }

    fn hist(records: Vec<OpRecord<u64>>) -> History<u64> {
        History {
            initial: 0,
            records,
            recoveries: vec![],
        }
    }

    #[test]
    fn empty_history_is_atomic() {
        let v = check(&hist(vec![])).unwrap();
        assert_eq!(v, SwmrVerdict::default());
    }

    #[test]
    fn sequential_reads_and_writes() {
        let h = hist(vec![
            w(0, 0, 10, 1),
            r(1, 1, 11, 20, 1),
            w(2, 21, 30, 2),
            r(3, 2, 31, 40, 2),
        ]);
        let v = check(&h).unwrap();
        assert_eq!(v.reads_checked, 2);
        assert_eq!(v.writes, 2);
        assert_eq!(v.initial_reads, 0);
    }

    #[test]
    fn read_of_initial_value() {
        let h = hist(vec![r(0, 1, 0, 5, 0), w(1, 10, 20, 1)]);
        let v = check(&h).unwrap();
        assert_eq!(v.initial_reads, 1);
    }

    #[test]
    fn concurrent_read_may_see_old_or_new() {
        // Read overlaps write: both the old and the new value are legal.
        for seen in [0u64, 1] {
            let h = hist(vec![w(0, 10, 20, 1), r(1, 1, 5, 15, seen)]);
            check(&h).unwrap_or_else(|e| panic!("value {seen} must be legal: {e}"));
        }
    }

    #[test]
    fn detects_read_from_future() {
        // Read finishes before the write begins, yet returns its value.
        let h = hist(vec![r(0, 1, 0, 5, 1), w(1, 10, 20, 1)]);
        assert_eq!(
            check(&h),
            Err(AtomicityViolation::ReadFromFuture {
                read: OpId::new(0),
                write_index: 1
            })
        );
    }

    #[test]
    fn detects_stale_read() {
        // w(1) completes, then a read returns the initial value.
        let h = hist(vec![w(0, 0, 10, 1), r(1, 1, 20, 30, 0)]);
        assert_eq!(
            check(&h),
            Err(AtomicityViolation::StaleRead {
                read: OpId::new(1),
                got: 0,
                required: 1
            })
        );
    }

    #[test]
    fn stale_read_two_writes_back() {
        let h = hist(vec![w(0, 0, 10, 1), w(1, 11, 20, 2), r(2, 1, 25, 30, 1)]);
        assert_eq!(
            check(&h),
            Err(AtomicityViolation::StaleRead {
                read: OpId::new(2),
                got: 1,
                required: 2
            })
        );
    }

    #[test]
    fn detects_new_old_inversion() {
        // Both reads overlap the write — individually both values are fine —
        // but r1 (finishing first) sees the NEW value and the later r2 sees
        // the OLD one: inversion.
        let h = hist(vec![
            w(0, 0, 100, 1),
            r(1, 1, 10, 20, 1),
            r(2, 2, 30, 40, 0),
        ]);
        assert_eq!(
            check(&h),
            Err(AtomicityViolation::NewOldInversion {
                earlier: OpId::new(1),
                later: OpId::new(2),
                earlier_index: 1,
                later_index: 0
            })
        );
    }

    #[test]
    fn overlapping_reads_may_invert() {
        // If the reads overlap each other, no order is imposed: not an
        // inversion.
        let h = hist(vec![
            w(0, 0, 100, 1),
            r(1, 1, 10, 30, 1),
            r(2, 2, 20, 40, 0),
        ]);
        check(&h).unwrap();
    }

    #[test]
    fn pending_write_may_be_read_or_not() {
        // Writer crashed mid-write: reads may see it...
        let h = hist(vec![
            w(0, 0, 10, 1),
            w_pending(1, 20, 2),
            r(2, 1, 30, 40, 2),
        ]);
        check(&h).unwrap();
        // ...or not, even much later.
        let h = hist(vec![
            w(0, 0, 10, 1),
            w_pending(1, 20, 2),
            r(2, 1, 30, 40, 1),
        ]);
        check(&h).unwrap();
    }

    #[test]
    fn pending_write_value_respects_inversion() {
        // A read of the pending write followed by a read of the older value
        // is still an inversion.
        let h = hist(vec![
            w(0, 0, 10, 1),
            w_pending(1, 20, 2),
            r(2, 1, 30, 40, 2),
            r(3, 2, 50, 60, 1),
        ]);
        assert!(matches!(
            check(&h),
            Err(AtomicityViolation::NewOldInversion { .. })
        ));
    }

    #[test]
    fn rejects_unknown_value() {
        let h = hist(vec![w(0, 0, 10, 1), r(1, 1, 20, 30, 99)]);
        assert_eq!(
            check(&h),
            Err(AtomicityViolation::UnknownValue { read: OpId::new(1) })
        );
    }

    #[test]
    fn rejects_multiple_writers() {
        let mut h = hist(vec![w(0, 0, 10, 1)]);
        h.records.push(OpRecord {
            op_id: OpId::new(1),
            proc: ProcessId::new(1),
            op: Operation::Write(2),
            invoked_at: 20,
            completed: Some((30, OpOutcome::Written)),
        });
        assert_eq!(
            check(&h),
            Err(AtomicityViolation::MultipleWriters { writers: (0, 1) })
        );
    }

    #[test]
    fn rejects_overlapping_writes() {
        let h = hist(vec![w(0, 0, 50, 1), w(1, 10, 60, 2)]);
        assert_eq!(
            check(&h),
            Err(AtomicityViolation::OverlappingWrites {
                first: OpId::new(0),
                second: OpId::new(1)
            })
        );
    }

    #[test]
    fn rejects_pending_write_not_last() {
        let h = hist(vec![w_pending(0, 0, 1), w(1, 10, 20, 2)]);
        assert_eq!(
            check(&h),
            Err(AtomicityViolation::PendingWriteNotLast {
                write: OpId::new(0)
            })
        );
    }

    #[test]
    fn rejects_duplicate_values() {
        let h = hist(vec![w(0, 0, 10, 5), w(1, 20, 30, 5)]);
        assert_eq!(check(&h), Err(AtomicityViolation::AmbiguousValues));
        // Writing the initial value is equally ambiguous.
        let h = hist(vec![w(0, 0, 10, 0)]);
        assert_eq!(check(&h), Err(AtomicityViolation::AmbiguousValues));
    }

    #[test]
    fn pending_reads_are_ignored() {
        let h = hist(vec![
            w(0, 0, 10, 1),
            OpRecord {
                op_id: OpId::new(1),
                proc: ProcessId::new(1),
                op: Operation::Read,
                invoked_at: 5,
                completed: None,
            },
        ]);
        let v = check(&h).unwrap();
        assert_eq!(v.reads_checked, 0);
    }

    #[test]
    fn touching_intervals_are_not_precedence() {
        // Write responds exactly when the read is invoked: linearization
        // points may still be ordered read-before-write.
        let h = hist(vec![w(0, 0, 10, 1), r(1, 1, 10, 20, 0)]);
        check(&h).unwrap();
    }

    #[test]
    fn regular_accepts_inversion_but_rejects_stale() {
        // New/old inversion: atomicity fails, regularity holds.
        let inv = hist(vec![
            w(0, 0, 100, 1),
            r(1, 1, 10, 20, 1),
            r(2, 2, 30, 40, 0),
        ]);
        assert!(matches!(
            check(&inv),
            Err(AtomicityViolation::NewOldInversion { .. })
        ));
        check_regular(&inv).expect("inversions are regular");

        // Stale read: both fail.
        let stale = hist(vec![w(0, 0, 10, 1), r(1, 1, 20, 30, 0)]);
        assert!(check(&stale).is_err());
        assert!(check_regular(&stale).is_err());

        // Read from the future: both fail.
        let future = hist(vec![r(0, 1, 0, 5, 1), w(1, 10, 20, 1)]);
        assert!(check(&future).is_err());
        assert!(check_regular(&future).is_err());
    }

    #[test]
    fn atomic_histories_are_regular() {
        let h = hist(vec![
            w(0, 0, 10, 1),
            r(1, 1, 11, 20, 1),
            w(2, 21, 30, 2),
            r(3, 2, 31, 40, 2),
        ]);
        check(&h).unwrap();
        check_regular(&h).unwrap();
    }

    #[test]
    fn sharded_check_judges_each_register_alone() {
        let good = hist(vec![w(0, 0, 10, 1), r(1, 1, 11, 20, 1)]);
        // Stale read: write #2 completed before the read began, but the
        // read still saw #1.
        let bad = hist(vec![w(0, 0, 10, 1), w(1, 11, 20, 2), r(2, 1, 30, 40, 1)]);
        let r0 = RegisterId::new(0);
        let r1 = RegisterId::new(1);

        let all_good = ShardedHistory::from_tagged(
            0u64,
            [r0, r1],
            good.records
                .iter()
                .map(|rec| (r0, rec.clone()))
                .collect::<Vec<_>>(),
        );
        let verdicts = check_sharded(&all_good).unwrap();
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[&r0].reads_checked, 1);
        assert_eq!(verdicts[&r1].reads_checked, 0);

        let mixed = ShardedHistory::from_tagged(
            0u64,
            [r0, r1],
            good.records
                .iter()
                .map(|rec| (r0, rec.clone()))
                .chain(bad.records.iter().map(|rec| (r1, rec.clone())))
                .collect::<Vec<_>>(),
        );
        let err = check_sharded(&mixed).unwrap_err();
        assert_eq!(err.reg, r1);
        assert!(matches!(
            err.violation,
            AtomicityViolation::StaleRead { .. }
        ));
    }
}
