//! General register linearizability checking: Wing–Gong search with state
//! memoization (Wing & Gong 1993; the memoization is Lowe's refinement).
//!
//! Exponential in the worst case, so intended for *small* histories: it
//! serves as (a) the checker for multi-writer (MWMR) histories, where the
//! single-writer shortcuts of [`crate::swmr`] do not apply, and (b) an
//! independent cross-check of the specialized checker — the two are compared
//! on thousands of randomized small histories in the test suite.
//!
//! Pending operations: a pending read constrains nothing and is dropped; a
//! pending write may or may not have taken effect, so the search tries every
//! subset of pending writes (each included write gets an infinite response
//! time). The number of pending writes is limited to
//! [`MAX_PENDING_WRITES`].

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

use twobit_proto::{History, Operation};

/// Hard cap on total (completed + included-pending) operations — the memo
/// key packs the linearized set into a `u64` bitmask.
pub const MAX_OPS: usize = 64;

/// Hard cap on pending writes (each doubles the search).
pub const MAX_PENDING_WRITES: usize = 8;

/// Why the Wing–Gong check failed (or could not run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WgError {
    /// More than [`MAX_OPS`] operations.
    TooManyOps(usize),
    /// More than [`MAX_PENDING_WRITES`] pending writes.
    TooManyPendingWrites(usize),
    /// A read returned a value that no write (and not the initial value)
    /// could explain.
    UnknownValue,
    /// No linearization exists.
    NotLinearizable,
}

impl fmt::Display for WgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WgError::TooManyOps(m) => write!(f, "history too large for WG search ({m} ops)"),
            WgError::TooManyPendingWrites(m) => write!(f, "too many pending writes ({m})"),
            WgError::UnknownValue => write!(f, "a read returned a never-written value"),
            WgError::NotLinearizable => write!(f, "no legal linearization exists"),
        }
    }
}

impl std::error::Error for WgError {}

#[derive(Clone, Copy)]
enum OpSem {
    Write(u32),
    Read(u32),
}

#[derive(Clone, Copy)]
struct WgOp {
    invoked_at: u64,
    response_at: u64, // u64::MAX for pending writes that are included
    sem: OpSem,
}

/// Checks linearizability of a (possibly multi-writer) register history.
///
/// # Errors
///
/// Returns a [`WgError`] if the history is too large, references unknown
/// values, or admits no linearization.
pub fn check_register<V: Clone + Eq + Hash>(history: &History<V>) -> Result<(), WgError> {
    // Map values to dense ids.
    let mut value_ids: HashMap<&V, u32> = HashMap::new();
    let mut next_id = 0u32;
    let mut intern = |v| -> u32 {
        *value_ids.entry(v).or_insert_with(|| {
            let id = next_id;
            next_id += 1;
            id
        })
    };
    let initial_id = intern(&history.initial);

    let mut completed: Vec<WgOp> = Vec::new();
    let mut pending_writes: Vec<WgOp> = Vec::new();
    for r in &history.records {
        match (&r.op, &r.completed) {
            (Operation::Write(v), Some((resp, _))) => completed.push(WgOp {
                invoked_at: r.invoked_at,
                response_at: *resp,
                sem: OpSem::Write(intern(v)),
            }),
            (Operation::Write(v), None) => pending_writes.push(WgOp {
                invoked_at: r.invoked_at,
                response_at: u64::MAX,
                sem: OpSem::Write(intern(v)),
            }),
            (Operation::Read, Some((resp, out))) => {
                let v = out.read_value().expect("read outcome");
                // A read of a truly unknown value can never linearize; we
                // only intern values seen in writes or the initial value,
                // so check before interning blindly.
                completed.push(WgOp {
                    invoked_at: r.invoked_at,
                    response_at: *resp,
                    sem: OpSem::Read(intern(v)),
                });
            }
            (Operation::Read, None) => {} // pending reads constrain nothing
        }
    }

    // Validate that every read's value is the initial value or written by
    // someone (otherwise fail fast with a precise error).
    let written: HashSet<u32> = completed
        .iter()
        .chain(&pending_writes)
        .filter_map(|o| match o.sem {
            OpSem::Write(id) => Some(id),
            OpSem::Read(_) => None,
        })
        .chain(std::iter::once(initial_id))
        .collect();
    if completed.iter().any(|o| match o.sem {
        OpSem::Read(id) => !written.contains(&id),
        OpSem::Write(_) => false,
    }) {
        return Err(WgError::UnknownValue);
    }

    if pending_writes.len() > MAX_PENDING_WRITES {
        return Err(WgError::TooManyPendingWrites(pending_writes.len()));
    }

    // Try every subset of pending writes.
    for subset in 0u32..(1 << pending_writes.len()) {
        let mut ops = completed.clone();
        for (k, w) in pending_writes.iter().enumerate() {
            if subset & (1 << k) != 0 {
                ops.push(*w);
            }
        }
        if ops.len() > MAX_OPS {
            return Err(WgError::TooManyOps(ops.len()));
        }
        if linearizes(&ops, initial_id) {
            return Ok(());
        }
    }
    Err(WgError::NotLinearizable)
}

/// Depth-first search for a legal linearization of `ops` from `initial`.
fn linearizes(ops: &[WgOp], initial: u32) -> bool {
    let m = ops.len();
    if m == 0 {
        return true;
    }
    let full: u64 = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
    let mut memo: HashSet<(u64, u32)> = HashSet::new();
    let mut stack: Vec<(u64, u32)> = vec![(0, initial)];
    while let Some((mask, val)) = stack.pop() {
        if mask == full {
            return true;
        }
        if !memo.insert((mask, val)) {
            continue;
        }
        // Minimal-response among unlinearized ops: an op may linearize next
        // only if no unlinearized op responded strictly before it was
        // invoked.
        let mut min_resp = u64::MAX;
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) == 0 {
                min_resp = min_resp.min(op.response_at);
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) != 0 || op.invoked_at > min_resp {
                continue;
            }
            match op.sem {
                OpSem::Write(v) => stack.push((mask | (1 << i), v)),
                OpSem::Read(v) => {
                    if v == val {
                        stack.push((mask | (1 << i), val));
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_proto::{OpId, OpOutcome, OpRecord, ProcessId};

    fn w(op_id: u64, proc: usize, inv: u64, resp: u64, v: u64) -> OpRecord<u64> {
        OpRecord {
            op_id: OpId::new(op_id),
            proc: ProcessId::new(proc),
            op: Operation::Write(v),
            invoked_at: inv,
            completed: Some((resp, OpOutcome::Written)),
        }
    }

    fn r(op_id: u64, proc: usize, inv: u64, resp: u64, v: u64) -> OpRecord<u64> {
        OpRecord {
            op_id: OpId::new(op_id),
            proc: ProcessId::new(proc),
            op: Operation::Read,
            invoked_at: inv,
            completed: Some((resp, OpOutcome::ReadValue(v))),
        }
    }

    fn hist(records: Vec<OpRecord<u64>>) -> History<u64> {
        History {
            initial: 0,
            records,
            recoveries: vec![],
        }
    }

    #[test]
    fn empty_is_linearizable() {
        check_register(&hist(vec![])).unwrap();
    }

    #[test]
    fn simple_sequential() {
        let h = hist(vec![w(0, 0, 0, 10, 1), r(1, 1, 20, 30, 1)]);
        check_register(&h).unwrap();
    }

    #[test]
    fn rejects_stale_read() {
        let h = hist(vec![w(0, 0, 0, 10, 1), r(1, 1, 20, 30, 0)]);
        assert_eq!(check_register(&h), Err(WgError::NotLinearizable));
    }

    #[test]
    fn rejects_new_old_inversion() {
        let h = hist(vec![
            w(0, 0, 0, 100, 1),
            r(1, 1, 10, 20, 1),
            r(2, 2, 30, 40, 0),
        ]);
        assert_eq!(check_register(&h), Err(WgError::NotLinearizable));
    }

    #[test]
    fn accepts_concurrent_reads_any_order() {
        let h = hist(vec![
            w(0, 0, 0, 100, 1),
            r(1, 1, 10, 30, 1),
            r(2, 2, 20, 40, 0),
        ]);
        check_register(&h).unwrap();
    }

    #[test]
    fn multi_writer_interleaving() {
        // Two writers; a read sees w(2) then a later read sees w(1): only
        // linearizable if w(1) is ordered after w(2)... which their overlap
        // allows.
        let h = hist(vec![
            w(0, 0, 0, 50, 1),
            w(1, 1, 0, 50, 2),
            r(2, 2, 60, 70, 2),
            r(3, 2, 80, 90, 2),
        ]);
        check_register(&h).unwrap();
        // But seeing 2 then 1 with non-overlapping reads and no other write
        // is NOT linearizable.
        let h = hist(vec![
            w(0, 0, 0, 50, 1),
            w(1, 1, 0, 50, 2),
            r(2, 2, 60, 70, 2),
            r(3, 2, 80, 90, 1),
        ]);
        assert_eq!(check_register(&h), Err(WgError::NotLinearizable));
    }

    #[test]
    fn multi_writer_sequential_order_respected() {
        // w(1) completes before w(2) starts: reads may never see 1 after 2.
        let h = hist(vec![
            w(0, 0, 0, 10, 1),
            w(1, 1, 20, 30, 2),
            r(2, 2, 40, 50, 1),
        ]);
        assert_eq!(check_register(&h), Err(WgError::NotLinearizable));
    }

    #[test]
    fn pending_write_optional() {
        let mut h = hist(vec![w(0, 0, 0, 10, 1)]);
        h.records.push(OpRecord {
            op_id: OpId::new(1),
            proc: ProcessId::new(0),
            op: Operation::Write(2),
            invoked_at: 20,
            completed: None,
        });
        // Read sees the pending write.
        let mut h1 = h.clone();
        h1.records.push(r(2, 1, 30, 40, 2));
        check_register(&h1).unwrap();
        // Read does not see it.
        let mut h2 = h.clone();
        h2.records.push(r(2, 1, 30, 40, 1));
        check_register(&h2).unwrap();
        // But a read *before* the pending write's invocation cannot see it.
        let mut h3 = h;
        h3.records.push(r(2, 1, 5, 15, 2));
        assert_eq!(check_register(&h3), Err(WgError::NotLinearizable));
    }

    #[test]
    fn unknown_value_detected() {
        let h = hist(vec![w(0, 0, 0, 10, 1), r(1, 1, 20, 30, 42)]);
        assert_eq!(check_register(&h), Err(WgError::UnknownValue));
    }

    #[test]
    fn duplicate_values_supported() {
        // The same value written twice — fine for WG (unlike the SWMR
        // fast checker).
        let h = hist(vec![
            w(0, 0, 0, 10, 5),
            r(1, 1, 15, 20, 5),
            w(2, 0, 25, 30, 5),
            r(3, 1, 35, 40, 5),
        ]);
        check_register(&h).unwrap();
    }

    #[test]
    fn too_many_pending_writes() {
        let mut h = hist(vec![]);
        for i in 0..9 {
            h.records.push(OpRecord {
                op_id: OpId::new(i),
                proc: ProcessId::new(i as usize % 3),
                op: Operation::Write(i),
                invoked_at: i * 10,
                completed: None,
            });
        }
        assert_eq!(check_register(&h), Err(WgError::TooManyPendingWrites(9)));
    }

    #[test]
    fn pending_reads_dropped() {
        let mut h = hist(vec![w(0, 0, 0, 10, 1)]);
        h.records.push(OpRecord {
            op_id: OpId::new(1),
            proc: ProcessId::new(1),
            op: Operation::Read,
            invoked_at: 5,
            completed: None,
        });
        check_register(&h).unwrap();
    }
}
