//! Experiment E4: crash tolerance (Theorem 1) and the necessity of a
//! correct majority (§2.2).
//!
//! Scenarios: up to `t` crashes — including crashes *during* broadcasts and
//! a writer crash mid-write — must leave every live process's operations
//! both **live** (they terminate) and **atomic**. Crashing more than `t`
//! processes must stall the protocol (the `t < n/2` bound of ABD'95 is
//! tight),
//! which the simulator reports as stalled operations at quiescence.

use twobit_core::{invariants, TwoBitProcess};
use twobit_proto::{Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, CrashPlan, CrashPoint, DelayModel, SimBuilder};

use crate::report::Table;
use crate::DELTA;

/// Outcome of one crash scenario.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario label.
    pub name: &'static str,
    /// Number of crashed processes.
    pub crashes: usize,
    /// Completed operations.
    pub completed: usize,
    /// Stalled operations of live processes.
    pub stalled: usize,
    /// Whether the history passed the atomicity check.
    pub atomic: bool,
}

/// Runs one scenario on n=5, t=2.
fn scenario(
    name: &'static str,
    crashes: CrashPlan,
    seed: u64,
    expect_stall: bool,
) -> ScenarioResult {
    let n = 5;
    let cfg = SystemConfig::max_resilience(n); // t = 2
    let writer = ProcessId::new(0);
    let crash_count = crashes.crash_count();
    let mut sim = SimBuilder::new(cfg)
        .seed(seed)
        .delay(DelayModel::Uniform { lo: 10, hi: DELTA })
        .crashes(crashes)
        .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
    for inv in invariants::all::<u64>(writer) {
        sim.add_invariant(inv);
    }
    sim.client_plan(0, ClientPlan::ops((1..=10u64).map(Operation::Write)));
    sim.client_plan(1, ClientPlan::ops((0..8).map(|_| Operation::<u64>::Read)));
    sim.client_plan(2, ClientPlan::ops((0..8).map(|_| Operation::<u64>::Read)));
    let report = sim
        .run()
        .expect("crash scenario must not violate invariants");
    let atomic = twobit_lincheck::check_swmr(&report.history).is_ok();
    let res = ScenarioResult {
        name,
        crashes: crash_count,
        completed: report.history.completed().count(),
        stalled: report.stalled_ops.len(),
        atomic,
    };
    if expect_stall {
        assert!(res.stalled > 0, "{name}: expected a stall without a quorum");
    } else {
        assert_eq!(res.stalled, 0, "{name}: liveness violated");
    }
    assert!(res.atomic, "{name}: atomicity violated");
    res
}

/// Runs all E4 scenarios and renders the report.
pub fn run(seed: u64) -> String {
    let mut out = String::from("## E4 — Crash tolerance (n=5, t=2)\n\n");
    let results = vec![
        scenario("failure-free", CrashPlan::none(), seed, false),
        scenario(
            "one reader crashes",
            CrashPlan::none().with_crash(3, CrashPoint::AtTime(3 * DELTA)),
            seed,
            false,
        ),
        scenario(
            "two crash mid-broadcast",
            CrashPlan::none()
                .with_crash(
                    3,
                    CrashPoint::OnStep {
                        step: 2,
                        sends_allowed: 1,
                    },
                )
                .with_crash(
                    4,
                    CrashPoint::OnStep {
                        step: 5,
                        sends_allowed: 2,
                    },
                ),
            seed,
            false,
        ),
        scenario(
            "writer crashes mid-write",
            CrashPlan::none().with_crash(
                0,
                // The writer's 3rd handler execution is within its second
                // write's lifetime; cut the broadcast after 1 send.
                CrashPoint::OnStep {
                    step: 3,
                    sends_allowed: 1,
                },
            ),
            seed,
            false,
        ),
        scenario(
            "majority crashes (t+1 = 3)",
            CrashPlan::none()
                .with_crash(2, CrashPoint::AtTime(5 * DELTA))
                .with_crash(3, CrashPoint::AtTime(5 * DELTA))
                .with_crash(4, CrashPoint::AtTime(5 * DELTA)),
            seed,
            true,
        ),
    ];
    let mut t = Table::new([
        "scenario",
        "crashed",
        "completed ops",
        "stalled ops",
        "atomic",
    ]);
    for r in &results {
        t.row([
            r.name.to_string(),
            r.crashes.to_string(),
            r.completed.to_string(),
            r.stalled.to_string(),
            if r.atomic {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nUp to t crashes: every live operation terminates and the history stays atomic \
         (Theorem 1). With t+1 crashes the quorum predicate is unsatisfiable and operations \
         stall — the t < n/2 requirement is tight.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_behave() {
        let report = run(42);
        assert!(report.contains("failure-free"));
        assert!(report.contains("majority crashes"));
        assert!(!report.contains("| NO |"));
    }

    #[test]
    fn scenarios_stable_across_seeds() {
        for seed in [1u64, 9, 77] {
            let _ = run(seed);
        }
    }
}
