//! Experiment E5: the fault-tolerant synchronizer's bounds (P1/P2, §3.3/§5).
//!
//! The paper's §5 highlights that the algorithm is a crash-tolerant
//! *synchronizer*: `∀ i,j : |w_sync_i[j] − w_sync_j[i]| ≤ 1` (P2), and on
//! each channel at most one `WRITE` bypasses another (P1). This experiment
//! runs an adversarial reordering delay model and *measures* the maxima —
//! not just asserting the bound, but showing it is attained (gap = 1
//! happens, gap = 2 never).

use std::cell::Cell;
use std::rc::Rc;

use twobit_core::{invariants, TwoBitMsg, TwoBitProcess};
use twobit_proto::{Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, DelayModel, SimBuilder, SimInvariant, SimView};

use crate::report::Table;
use crate::DELTA;

/// Maxima observed by the probe.
#[derive(Clone, Debug, Default)]
pub struct SyncProbeResult {
    /// Max observed `|w_sync_i[j] − w_sync_j[i]|`.
    pub max_gap: u64,
    /// Max `WRITE`s buffered out-of-order at any process from one sender.
    pub max_buffered: usize,
    /// Max unprocessed `WRITE`s (in flight + buffered) per channel.
    pub max_unprocessed: usize,
}

/// A probing invariant: records maxima instead of failing.
struct SyncProbe {
    gap: Rc<Cell<u64>>,
    buffered: Rc<Cell<usize>>,
    unprocessed: Rc<Cell<usize>>,
}

impl SimInvariant<TwoBitProcess<u64>> for SyncProbe {
    fn name(&self) -> &'static str {
        "sync-probe"
    }

    fn check(&mut self, view: &SimView<'_, TwoBitProcess<u64>>) -> Result<(), String> {
        let n = view.procs.len();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let a = view.procs[i].w_sync()[j];
                let b = view.procs[j].w_sync()[i];
                self.gap.set(self.gap.get().max(a.abs_diff(b)));
                let buffered = view.procs[j].buffered_from(ProcessId::new(i));
                self.buffered.set(self.buffered.get().max(buffered));
                let inflight = view
                    .channel(ProcessId::new(i), ProcessId::new(j))
                    .iter()
                    .filter(|m| matches!(m.msg, TwoBitMsg::Write(_, _)))
                    .count();
                self.unprocessed
                    .set(self.unprocessed.get().max(inflight + buffered));
            }
        }
        Ok(())
    }
}

/// Runs the probe under an aggressive reordering adversary.
pub fn probe(n: usize, writes: usize, seed: u64) -> SyncProbeResult {
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let mut sim = SimBuilder::new(cfg)
        .seed(seed)
        .delay(DelayModel::Spiky {
            lo: 1,
            hi: DELTA / 4,
            spike_ppm: 250_000,
            spike_lo: 2 * DELTA,
            spike_hi: 8 * DELTA,
        })
        .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
    // The full invariant battery (hard assertions) runs alongside the probe.
    for inv in invariants::all::<u64>(writer) {
        sim.add_invariant(inv);
    }
    let gap = Rc::new(Cell::new(0));
    let buffered = Rc::new(Cell::new(0));
    let unprocessed = Rc::new(Cell::new(0));
    sim.add_invariant(Box::new(SyncProbe {
        gap: gap.clone(),
        buffered: buffered.clone(),
        unprocessed: unprocessed.clone(),
    }));
    sim.client_plan(
        0,
        ClientPlan::ops((1..=writes as u64).map(Operation::Write)),
    );
    for r in 1..n {
        sim.client_plan(
            r,
            ClientPlan::ops((0..writes / 2).map(|_| Operation::<u64>::Read)),
        );
    }
    let report = sim.run().expect("probe run violated a hard invariant");
    assert!(report.all_live_ops_completed(), "probe run stalled");
    twobit_lincheck::check_swmr(&report.history).expect("atomicity under reordering");
    SyncProbeResult {
        max_gap: gap.get(),
        max_buffered: buffered.get(),
        max_unprocessed: unprocessed.get(),
    }
}

/// Runs E5 across seeds and renders the report.
pub fn run(n: usize, writes: usize, seeds: u64) -> String {
    let mut out =
        String::from("## E5 — Synchronizer bounds under adversarial reordering (P1/P2)\n\n");
    let mut t = Table::new([
        "seed",
        "max |w_sync gap| (bound 1)",
        "max buffered/channel (bound 1)",
        "max unprocessed/channel (bound 2)",
    ]);
    let mut attained_gap = false;
    let mut attained_buf = false;
    for seed in 0..seeds {
        let r = probe(n, writes, seed);
        assert!(r.max_gap <= 1, "P2 violated: gap {}", r.max_gap);
        assert!(
            r.max_buffered <= 1,
            "P1 violated: buffered {}",
            r.max_buffered
        );
        assert!(
            r.max_unprocessed <= 2,
            "P1 violated: unprocessed {}",
            r.max_unprocessed
        );
        attained_gap |= r.max_gap == 1;
        attained_buf |= r.max_buffered == 1;
        t.row([
            seed.to_string(),
            r.max_gap.to_string(),
            r.max_buffered.to_string(),
            r.max_unprocessed.to_string(),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(&format!(
        "\nBounds hold in every run; gap = 1 attained: {attained_gap}; out-of-order \
         buffering exercised: {attained_buf}.\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_and_are_attained() {
        let r = probe(4, 20, 5);
        assert!(r.max_gap <= 1);
        assert!(r.max_buffered <= 1);
        assert!(r.max_unprocessed <= 2);
        // The synchronizer genuinely desynchronizes by one step.
        assert_eq!(r.max_gap, 1);
    }

    #[test]
    fn report_renders() {
        let report = run(3, 10, 2);
        assert!(report.contains("bound 1"));
    }
}
