//! Minimal markdown/CSV table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table that renders to GitHub markdown or CSV.
///
/// # Examples
///
/// ```
/// use twobit_harness::Table;
///
/// let mut t = Table::new(["algo", "msgs/write"]);
/// t.row(["two-bit", "20"]);
/// let md = t.to_markdown();
/// assert!(md.starts_with("| algo    | msgs/write |"));
/// assert!(md.contains("| two-bit | 20         |"));
/// assert_eq!(t.to_csv(), "algo,msgs/write\ntwo-bit,20\n");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header cells.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                let _ = write!(out, " {}{} |", c, " ".repeat(pad));
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        out.push('|');
        for w in &width {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (no quoting — cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float compactly (2 decimals, trailing zeros trimmed).
pub fn fmt_f64(x: f64) -> String {
    let s = format!("{x:.2}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// Percentile of a sorted slice (nearest-rank).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["xxxx", "1"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("| a "));
        assert!(lines[1].starts_with("|---"));
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_renders() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]).row(["3", "4"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(2.504), "2.5");
        assert_eq!(fmt_f64(0.0), "0");
    }

    #[test]
    fn percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }
}
