//! Experiment E10: end-to-end run on the live threaded runtime.
//!
//! The same automaton that was measured on the simulator runs on OS threads
//! with chaos links (real delays, real reordering) and a real crash, and the
//! client-observed history is checked for atomicity. This is the
//! whole-system smoke test: protocol + runtime + checker.

use std::time::Duration;

use twobit_core::TwoBitProcess;
use twobit_proto::{ProcessId, SystemConfig};
use twobit_runtime::ClusterBuilder;
use twobit_simnet::DelayModel;

/// Summary of the live run.
#[derive(Clone, Debug)]
pub struct LiveSummary {
    /// Completed operations.
    pub completed: usize,
    /// Messages sent on the wire.
    pub messages: u64,
    /// Whether the client-observed history was atomic.
    pub atomic: bool,
}

/// Runs the live scenario: n processes, one writer thread, n−1 reader
/// threads, one mid-run crash (within `t`).
pub fn scenario(n: usize, writes: u64, seed: u64) -> LiveSummary {
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let cluster = ClusterBuilder::new(cfg)
        .seed(seed)
        .delay(DelayModel::Spiky {
            lo: 20,
            hi: 200,
            spike_ppm: 100_000,
            spike_lo: 500,
            spike_hi: 2_000,
        })
        .op_timeout(Duration::from_secs(20))
        .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))
        .expect("cluster start");

    std::thread::scope(|s| {
        // Writer thread.
        let mut w = cluster.client(0);
        s.spawn(move || {
            for v in 1..=writes {
                w.write(v).expect("write failed");
            }
        });
        // Reader threads on every other live process except the victim.
        let victim = n - 1;
        for r in 1..n {
            if r == victim {
                continue;
            }
            let mut c = cluster.client(r);
            let reads = writes;
            s.spawn(move || {
                let mut last = 0u64;
                for _ in 0..reads {
                    let v = c.read().expect("read failed");
                    // Client-side regression check (reads by one client
                    // must be monotone — implied by atomicity).
                    assert!(v >= last, "monotonicity violated: {v} < {last}");
                    last = v;
                }
            });
        }
        // Crash the victim partway through (within t).
        let cluster_ref = &cluster;
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            cluster_ref.crash(victim).expect("victim is live");
        });
    });

    let (history, stats) = cluster.shutdown();
    let atomic = twobit_lincheck::check_swmr(&history).is_ok();
    LiveSummary {
        completed: history.completed().count(),
        messages: stats.total_sent(),
        atomic,
    }
}

/// Runs E10 and renders the report.
pub fn run(n: usize, writes: u64, seed: u64) -> String {
    let s = scenario(n, writes, seed);
    assert!(s.atomic, "live history must be atomic");
    format!(
        "## E10 — Live threaded runtime (n = {n}, chaos links, one crash)\n\n\
         completed operations: {}\nmessages sent: {}\natomic: {}\n",
        s.completed, s.messages, s.atomic
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_scenario_is_atomic() {
        let s = scenario(5, 15, 42);
        assert!(s.atomic);
        assert!(s.completed >= 15);
        assert!(s.messages > 0);
    }
}
