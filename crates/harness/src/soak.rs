//! Experiment E6: randomized linearizability soak (Lemma 10 / Theorem 1).
//!
//! Thousands of seeded random schedules — random system sizes, delay
//! models, crash plans (≤ t), and workloads — each run with the full
//! invariant battery and checked for atomicity. Any failure reproduces
//! deterministically from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twobit_core::{invariants, TwoBitProcess};
use twobit_proto::{Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, CrashPlan, CrashPoint, DelayModel, PlannedOp, SimBuilder};

use crate::DELTA;

/// Summary of a soak campaign.
#[derive(Clone, Debug, Default)]
pub struct SoakSummary {
    /// Runs executed.
    pub runs: u64,
    /// Total operations completed across all runs.
    pub ops_completed: u64,
    /// Total crashes injected.
    pub crashes_injected: u64,
    /// Runs in which some live operation stalled (must be 0).
    pub stalls: u64,
}

/// Runs one random scenario derived from `seed`. Panics on any violation.
pub fn soak_once(seed: u64) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=7);
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(rng.gen_range(0..n));
    let delay = match rng.gen_range(0..3) {
        0 => DelayModel::Fixed(DELTA),
        1 => DelayModel::Uniform { lo: 1, hi: DELTA },
        _ => DelayModel::Spiky {
            lo: 1,
            hi: DELTA / 2,
            spike_ppm: 200_000,
            spike_lo: DELTA,
            spike_hi: 6 * DELTA,
        },
    };
    // Crash up to t processes, half the time.
    let mut crashes = CrashPlan::none();
    let mut crash_count = 0u64;
    if rng.gen_bool(0.5) {
        let k = rng.gen_range(0..=cfg.t());
        let mut victims: Vec<usize> = (0..n).collect();
        for _ in 0..k {
            let idx = rng.gen_range(0..victims.len());
            let victim = victims.swap_remove(idx);
            crash_count += 1;
            crashes = if rng.gen_bool(0.5) {
                crashes.with_crash(victim, CrashPoint::AtTime(rng.gen_range(1..40 * DELTA)))
            } else {
                crashes.with_crash(
                    victim,
                    CrashPoint::OnStep {
                        step: rng.gen_range(1..20),
                        sends_allowed: rng.gen_range(0..n),
                    },
                )
            };
        }
    }

    let mut sim = SimBuilder::new(cfg)
        .seed(seed ^ 0xABCD_EF01)
        .delay(delay)
        .crashes(crashes)
        .check_every(3)
        .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
    for inv in invariants::all::<u64>(writer) {
        sim.add_invariant(inv);
    }
    // Random workload: the writer writes 1..=w distinct values, every
    // process reads a random number of times with random pauses.
    let w = rng.gen_range(1..=12u64);
    sim.client_plan(
        writer.index(),
        ClientPlan::new(
            (1..=w).map(|v| PlannedOp::after(rng.gen_range(0..3 * DELTA), Operation::Write(v))),
        ),
    );
    for p in 0..n {
        if p == writer.index() {
            continue;
        }
        let reads = rng.gen_range(0..8);
        sim.client_plan(
            p,
            ClientPlan::new(
                (0..reads)
                    .map(|_| PlannedOp::after(rng.gen_range(0..4 * DELTA), Operation::<u64>::Read)),
            )
            .starting_at(rng.gen_range(0..10 * DELTA)),
        );
    }
    let report = sim.run().expect("soak run violated an invariant");
    // Stalls are only legitimate if more than... we never crash more than t,
    // so there must be none.
    assert!(
        report.all_live_ops_completed(),
        "soak seed {seed}: liveness violated"
    );
    twobit_lincheck::check_swmr(&report.history)
        .unwrap_or_else(|e| panic!("soak seed {seed}: atomicity violated: {e}"));
    (report.history.completed().count() as u64, crash_count)
}

/// Runs `runs` random scenarios starting at `seed0`.
pub fn run(runs: u64, seed0: u64) -> String {
    let mut summary = SoakSummary::default();
    for i in 0..runs {
        let (ops, crashes) = soak_once(seed0.wrapping_add(i));
        summary.runs += 1;
        summary.ops_completed += ops;
        summary.crashes_injected += crashes;
    }
    format!(
        "## E6 — Randomized linearizability soak\n\n\
         runs: {}\ncompleted operations checked: {}\ncrashes injected: {}\n\
         invariant violations: 0\natomicity violations: 0\nliveness violations: 0\n",
        summary.runs, summary.ops_completed, summary.crashes_injected
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_soak_passes() {
        let report = run(25, 1000);
        assert!(report.contains("runs: 25"));
        assert!(report.contains("atomicity violations: 0"));
    }
}
