//! Experiment E8: control-information growth with history length.
//!
//! The question that motivates the paper: sequence-number-carrying
//! algorithms put ever-growing control information on the wire, the two-bit
//! algorithm puts a **constant 2 bits** on every message forever. This
//! experiment runs `k` writes for growing `k` and reports the largest and
//! mean control-bit cost per message for both algorithms — the "series"
//! behind Table 1 row 3.

use twobit_baselines::AbdProcess;
use twobit_core::TwoBitProcess;
use twobit_proto::{Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, DelayModel, SimBuilder};

use crate::report::{fmt_f64, Table};
use crate::DELTA;

/// One sample of the growth series.
#[derive(Clone, Debug)]
pub struct GrowthPoint {
    /// Number of writes performed.
    pub writes: u64,
    /// Two-bit: (max, mean) control bits per message.
    pub twobit: (u64, f64),
    /// Unbounded ABD: (max, mean) control bits per message.
    pub abd: (u64, f64),
}

/// Measures the series for the given write counts.
pub fn series(n: usize, write_counts: &[u64], seed: u64) -> Vec<GrowthPoint> {
    write_counts
        .iter()
        .map(|&k| {
            let cfg = SystemConfig::max_resilience(n);
            let writer = ProcessId::new(0);
            let run = |two_bit: bool| -> (u64, f64) {
                macro_rules! go {
                    ($make:expr) => {{
                        let mut sim = SimBuilder::new(cfg)
                            .seed(seed)
                            .delay(DelayModel::Fixed(DELTA / 10))
                            .check_every(0)
                            .max_events(200_000_000)
                            .build($make);
                        sim.client_plan(0, ClientPlan::ops((1..=k).map(Operation::Write)));
                        let report = sim.run().expect("growth run failed");
                        assert!(report.all_live_ops_completed());
                        let total = report.stats.total_sent().max(1);
                        (
                            report.stats.max_msg_control_bits(),
                            report.stats.control_bits() as f64 / total as f64,
                        )
                    }};
                }
                if two_bit {
                    go!(|id| TwoBitProcess::new(id, cfg, writer, 0u64))
                } else {
                    go!(|id| AbdProcess::new(id, cfg, writer, 0u64))
                }
            };
            GrowthPoint {
                writes: k,
                twobit: run(true),
                abd: run(false),
            }
        })
        .collect()
}

/// Runs E8 and renders the report (markdown + CSV series).
pub fn run(n: usize, seed: u64) -> String {
    let counts = [1u64, 10, 100, 1_000, 5_000];
    let points = series(n, &counts, seed);
    let mut out =
        String::from("## E8 — Control bits per message vs history length (n writes performed)\n\n");
    let mut t = Table::new([
        "writes",
        "two-bit max",
        "two-bit mean",
        "ABD max",
        "ABD mean",
    ]);
    for p in &points {
        t.row([
            p.writes.to_string(),
            p.twobit.0.to_string(),
            fmt_f64(p.twobit.1),
            p.abd.0.to_string(),
            fmt_f64(p.abd.1),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str("\nCSV series:\n\n```\n");
    out.push_str(&t.to_csv());
    out.push_str("```\n");
    out.push_str(
        "\nThe two-bit column is the constant 2 regardless of history length; ABD's \
         control cost grows with log2(seq).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twobit_is_constant_abd_grows() {
        let pts = series(3, &[1, 50, 500], 9);
        for p in &pts {
            assert_eq!(p.twobit.0, 2, "writes={}", p.writes);
            assert_eq!(p.twobit.1, 2.0);
        }
        // ABD's max control bits grow with the write count.
        assert!(pts[2].abd.0 > pts[0].abd.0);
        // log2(500) ≈ 9 bits of seq + 3 tag bits.
        assert!(pts[2].abd.0 >= 9);
    }
}
