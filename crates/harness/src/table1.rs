//! Experiment E1: regenerate **Table 1** of the paper.
//!
//! For each of the four algorithms and each of the six metrics the paper
//! tabulates, print the paper's (asymptotic) claim next to the measured
//! value at a concrete system size. Emulated columns are flagged — their
//! message-size and memory figures are modeled by construction (DESIGN.md
//! §5); their message counts and latencies are genuinely measured from the
//! emulation's wire behaviour.

use crate::measure::{Algo, OpMetrics};
use crate::report::{fmt_f64, Table};
use crate::DELTA;

/// Paper claims, per algorithm, in Table 1 row order.
fn paper_claims(algo: Algo) -> [&'static str; 6] {
    match algo {
        Algo::AbdUnbounded => ["O(n)", "O(n)", "unbounded", "unbounded", "2d", "4d"],
        Algo::AbdBounded => ["O(n^2)", "O(n^2)", "O(n^5)", "O(n^6)", "12d", "12d"],
        Algo::Attiya => ["O(n)", "O(n)", "O(n^3)", "O(n^5)", "14d", "18d"],
        Algo::TwoBit => ["O(n^2)", "O(n)", "2", "unbounded", "2d", "4d"],
    }
}

/// Runs E1 and renders the paper-vs-measured table.
pub fn run(n: usize, writes: usize, reads: usize, seed: u64) -> String {
    let metrics: Vec<OpMetrics> = Algo::ALL
        .iter()
        .map(|a| a.measure(n, writes, reads, seed))
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "## E1 — Table 1 (n = {n}, t = {}, {writes} writes, {reads} reads, Δ = {DELTA} ticks)\n\n",
        twobit_proto::SystemConfig::max_resilience(n).t()
    ));
    out.push_str("Each cell: paper claim → measured value. Emulated columns marked (e).\n\n");

    let mut header: Vec<String> = vec!["metric".to_string()];
    for m in &metrics {
        let mark = if m.algo.is_emulated() { " (e)" } else { "" };
        header.push(format!("{}{}", m.algo.name(), mark));
    }
    let mut t = Table::new(header);

    let measured_rows: Vec<Vec<String>> = vec![
        metrics.iter().map(|m| fmt_f64(m.msgs_per_write)).collect(),
        metrics.iter().map(|m| fmt_f64(m.msgs_per_read)).collect(),
        metrics
            .iter()
            .map(|m| format!("{} max", m.max_control_bits))
            .collect(),
        metrics
            .iter()
            .map(|m| format!("{} bits", m.state_bits_max))
            .collect(),
        metrics
            .iter()
            .map(|m| format!("{}d", fmt_f64(m.write_delta_max())))
            .collect(),
        metrics
            .iter()
            .map(|m| format!("{}d", fmt_f64(m.read_delta_max())))
            .collect(),
    ];
    let row_names = [
        "#msgs: write",
        "#msgs: read",
        "msg size (control bits)",
        "local memory",
        "time: write",
        "time: read",
    ];
    for (ri, name) in row_names.iter().enumerate() {
        let mut row: Vec<String> = vec![name.to_string()];
        for (ci, m) in metrics.iter().enumerate() {
            row.push(format!(
                "{} → {}",
                paper_claims(m.algo)[ri],
                measured_rows[ri][ci]
            ));
        }
        t.row(row);
    }
    out.push_str(&t.to_markdown());
    out.push_str(&format!(
        "\nExact counts at n = {n}: two-bit write = n(n−1) = {}, two-bit read = 2(n−1) = {}; \
         ABD write = 2(n−1) = {}, ABD read = 4(n−1) = {}.\n",
        n * (n - 1),
        2 * (n - 1),
        2 * (n - 1),
        4 * (n - 1)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_report_contains_all_claims() {
        let report = run(5, 3, 3, 7);
        // Spot-check the headline cells.
        assert!(
            report.contains("2 → 2 max"),
            "two-bit msg size cell:\n{report}"
        );
        assert!(report.contains("2d → 2d"), "write latency cell");
        assert!(report.contains("O(n^5)"), "bounded ABD padding");
        assert!(report.contains("O(n^3)"), "Attiya padding");
        assert!(report.contains("proposed (two-bit)"));
        assert!(report.contains("(e)"), "emulated columns flagged");
    }

    #[test]
    fn two_bit_cells_are_exact() {
        let report = run(4, 2, 2, 3);
        // n=4: write = 12 msgs, read = 6 msgs.
        assert!(report.contains("O(n^2) → 12"), "{report}");
        assert!(report.contains("O(n) → 6"), "{report}");
    }
}
