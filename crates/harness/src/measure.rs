//! Uniform cost measurement across the four Table 1 algorithms.
//!
//! The measurement protocol is identical for every algorithm:
//!
//! 1. run `w` writes, sequentially, with generous gaps so the system is
//!    quiescent between operations (per-operation attribution is then just
//!    division);
//! 2. run the same writes followed by `r` sequential reads from a
//!    non-writer process;
//! 3. per-write messages = run-1 total / `w`; per-read messages =
//!    (run-2 total − run-1 total) / `r` (runs share a seed, so the write
//!    phases are identical event-for-event);
//! 4. latencies come from the recorded history (in Δ units), message sizes
//!    and local memory from the wire statistics and final automaton states.
//!
//! Every measured history is additionally passed through the
//! linearizability checker — measurements of a broken register would be
//! meaningless.

use twobit_baselines::{abd_bounded_profile, attiya_profile, AbdProcess, PhasedProcess};
use twobit_core::TwoBitProcess;
use twobit_proto::{Automaton, Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, DelayModel, PlannedOp, SimBuilder};

use crate::DELTA;

/// The four algorithms of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The paper's two-bit-message algorithm.
    TwoBit,
    /// ABD'95 with unbounded sequence numbers.
    AbdUnbounded,
    /// Bounded-sequence-number ABD'95 (cost-faithful emulation).
    AbdBounded,
    /// H. Attiya's bounded algorithm (cost-faithful emulation).
    Attiya,
}

impl Algo {
    /// All four, in Table 1 column order (ABD-unbounded, ABD-bounded,
    /// Attiya, proposed).
    pub const ALL: [Algo; 4] = [
        Algo::AbdUnbounded,
        Algo::AbdBounded,
        Algo::Attiya,
        Algo::TwoBit,
    ];

    /// Display name (matching Table 1's column headers).
    pub fn name(self) -> &'static str {
        match self {
            Algo::TwoBit => "proposed (two-bit)",
            Algo::AbdUnbounded => "ABD95 unbounded",
            Algo::AbdBounded => "ABD95 bounded (emulated)",
            Algo::Attiya => "Attiya (emulated)",
        }
    }

    /// `true` for the cost-faithful emulations (their message-size and
    /// memory figures are modeled, not emergent).
    pub fn is_emulated(self) -> bool {
        matches!(self, Algo::AbdBounded | Algo::Attiya)
    }

    /// Measures the algorithm's per-operation costs (see module docs).
    ///
    /// # Panics
    ///
    /// Panics if a run stalls, violates an invariant, or produces a
    /// non-linearizable history.
    pub fn measure(self, n: usize, writes: usize, reads: usize, seed: u64) -> OpMetrics {
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        match self {
            Algo::TwoBit => measure_impl(self, cfg, writes, reads, seed, |id| {
                TwoBitProcess::new(id, cfg, writer, 0u64)
            }),
            Algo::AbdUnbounded => measure_impl(self, cfg, writes, reads, seed, |id| {
                AbdProcess::new(id, cfg, writer, 0u64)
            }),
            Algo::AbdBounded => measure_impl(self, cfg, writes, reads, seed, |id| {
                PhasedProcess::new(id, cfg, writer, 0u64, abd_bounded_profile(n))
            }),
            Algo::Attiya => measure_impl(self, cfg, writes, reads, seed, |id| {
                PhasedProcess::new(id, cfg, writer, 0u64, attiya_profile(n))
            }),
        }
    }
}

/// Measured per-operation costs of one algorithm at one system size.
#[derive(Clone, Debug)]
pub struct OpMetrics {
    /// Which algorithm.
    pub algo: Algo,
    /// System size.
    pub n: usize,
    /// Messages per write operation (including all forwarding until
    /// quiescence).
    pub msgs_per_write: f64,
    /// Messages per read operation.
    pub msgs_per_read: f64,
    /// Largest control-bit cost of any single message.
    pub max_control_bits: u64,
    /// Mean control bits per message.
    pub mean_control_bits: f64,
    /// Largest per-process local state, in bits (modeled for emulations).
    pub state_bits_max: u64,
    /// Write latencies, in ticks (Δ = [`crate::DELTA`] ticks).
    pub write_latencies: Vec<u64>,
    /// Read latencies, in ticks.
    pub read_latencies: Vec<u64>,
}

impl OpMetrics {
    /// Maximum write latency in Δ units.
    pub fn write_delta_max(&self) -> f64 {
        self.write_latencies.iter().copied().max().unwrap_or(0) as f64 / DELTA as f64
    }

    /// Maximum read latency in Δ units.
    pub fn read_delta_max(&self) -> f64 {
        self.read_latencies.iter().copied().max().unwrap_or(0) as f64 / DELTA as f64
    }
}

/// Gap between sequential operations: ample time for full quiescence even
/// for the 18Δ emulated reads.
const GAP: u64 = 40 * DELTA;

fn plans(writes: usize, reads: usize) -> (ClientPlan<u64>, ClientPlan<u64>) {
    let writer_plan =
        ClientPlan::new((1..=writes as u64).map(|v| PlannedOp::after(GAP, Operation::Write(v))));
    // The reader starts well after the last write has settled.
    let reader_start = (writes as u64 + 2) * GAP;
    let reader_plan =
        ClientPlan::new((0..reads).map(|_| PlannedOp::after(GAP, Operation::<u64>::Read)))
            .starting_at(reader_start);
    (writer_plan, reader_plan)
}

fn measure_impl<A, F>(
    algo: Algo,
    cfg: SystemConfig,
    writes: usize,
    reads: usize,
    seed: u64,
    make: F,
) -> OpMetrics
where
    A: Automaton<Value = u64>,
    F: Fn(ProcessId) -> A,
{
    assert!(writes > 0 && reads > 0, "need at least one op of each kind");
    assert!(cfg.n() >= 2, "measurement needs a non-writer reader");
    let (writer_plan, reader_plan) = plans(writes, reads);

    // Run 1: writes only.
    let mut sim = SimBuilder::new(cfg)
        .seed(seed)
        .delay(DelayModel::Fixed(DELTA))
        .check_every(0)
        .build(&make);
    sim.client_plan(0, writer_plan.clone());
    let r1 = sim.run().expect("write-only run failed");
    assert!(r1.all_live_ops_completed(), "write-only run stalled");
    let write_msgs_total = r1.stats.total_sent();

    // Run 2: writes then reads (same seed → identical write phase).
    let mut sim = SimBuilder::new(cfg)
        .seed(seed)
        .delay(DelayModel::Fixed(DELTA))
        .check_every(0)
        .build(make);
    sim.client_plan(0, writer_plan);
    sim.client_plan(1, reader_plan);
    let r2 = sim.run().expect("read run failed");
    assert!(r2.all_live_ops_completed(), "read run stalled");
    twobit_lincheck::check_swmr(&r2.history).expect("measured history must be atomic");

    let read_msgs_total = r2.stats.total_sent() - write_msgs_total;
    let write_latencies: Vec<u64> = r2
        .history
        .records
        .iter()
        .filter(|r| r.op.is_write())
        .filter_map(twobit_proto::OpRecord::latency)
        .collect();
    let read_latencies: Vec<u64> = r2
        .history
        .records
        .iter()
        .filter(|r| r.op.is_read())
        .filter_map(twobit_proto::OpRecord::latency)
        .collect();
    let state_bits_max = r2
        .procs
        .iter()
        .map(twobit_proto::Automaton::state_bits)
        .max()
        .unwrap_or(0);
    let total = r2.stats.total_sent();

    OpMetrics {
        algo,
        n: cfg.n(),
        msgs_per_write: write_msgs_total as f64 / writes as f64,
        msgs_per_read: read_msgs_total as f64 / reads as f64,
        max_control_bits: r2.stats.max_msg_control_bits(),
        mean_control_bits: if total == 0 {
            0.0
        } else {
            r2.stats.control_bits() as f64 / total as f64
        },
        state_bits_max,
        write_latencies,
        read_latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twobit_metrics_match_paper() {
        let n = 5;
        let m = Algo::TwoBit.measure(n, 5, 5, 1);
        // Theorem 2: writes cost n(n−1) messages, reads 2(n−1).
        assert_eq!(m.msgs_per_write, (n * (n - 1)) as f64);
        assert_eq!(m.msgs_per_read, (2 * (n - 1)) as f64);
        // 2 control bits, always.
        assert_eq!(m.max_control_bits, 2);
        assert_eq!(m.mean_control_bits, 2.0);
        // 2Δ writes, ≤4Δ reads.
        assert_eq!(m.write_delta_max(), 2.0);
        assert!(m.read_delta_max() <= 4.0);
    }

    #[test]
    fn abd_metrics_match_paper() {
        let n = 5;
        let m = Algo::AbdUnbounded.measure(n, 5, 5, 1);
        assert_eq!(m.msgs_per_write, (2 * (n - 1)) as f64);
        assert_eq!(m.msgs_per_read, (4 * (n - 1)) as f64);
        assert_eq!(m.write_delta_max(), 2.0);
        assert_eq!(m.read_delta_max(), 4.0);
        // Control bits grow past the two-bit constant immediately.
        assert!(m.max_control_bits > 2);
    }

    #[test]
    fn bounded_emulations_match_their_profiles() {
        let n = 5;
        let b = Algo::AbdBounded.measure(n, 3, 3, 1);
        assert_eq!(b.write_delta_max(), 12.0);
        assert_eq!(b.read_delta_max(), 12.0);
        assert_eq!(b.max_control_bits, (n as u64).pow(5));
        // Echo phases make ops quadratic: strictly more than 12 rounds of
        // 2(n−1) messages each.
        assert!(b.msgs_per_write > (12 * (n - 1)) as f64);

        let a = Algo::Attiya.measure(n, 3, 3, 1);
        assert_eq!(a.write_delta_max(), 14.0);
        assert_eq!(a.read_delta_max(), 18.0);
        assert_eq!(a.max_control_bits, (n as u64).pow(3));
        // Linear: write = 7 rounds × 2(n−1).
        assert_eq!(a.msgs_per_write, (14 * (n - 1)) as f64);
        assert_eq!(a.msgs_per_read, (18 * (n - 1)) as f64);
    }

    #[test]
    fn emulation_flags() {
        assert!(!Algo::TwoBit.is_emulated());
        assert!(!Algo::AbdUnbounded.is_emulated());
        assert!(Algo::AbdBounded.is_emulated());
        assert!(Algo::Attiya.is_emulated());
        assert_eq!(Algo::ALL.len(), 4);
    }
}
