//! Experiments E2 (latency bounds under concurrency) and E9 (latency
//! distributions under jittered delays).
//!
//! E2 checks the paper's headline time-complexity claim — *"in a
//! failure-free context ... a write operation requires at most 2Δ time
//! units, and a read operation requires at most 4Δ time units"* — not just
//! in quiescent runs but under full read/write concurrency, which is where
//! the bound could plausibly break (the line 20 guard makes responders wait
//! for the reader to catch up).
//!
//! E9 compares all four algorithms' latency distributions when delays are
//! uniform in `[Δ/2, Δ]` — the regime where the bounded baselines' extra
//! phases hurt most.

use twobit_core::TwoBitProcess;
use twobit_proto::{Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, DelayModel, SimBuilder};

use crate::measure::Algo;
use crate::report::{fmt_f64, percentile, Table};
use crate::DELTA;

/// Result of the E2 bound check.
#[derive(Clone, Debug)]
pub struct BoundsResult {
    /// Max observed write latency in Δ.
    pub write_max_delta: f64,
    /// Max observed read latency in Δ.
    pub read_max_delta: f64,
    /// Number of writes / reads measured.
    pub ops: (usize, usize),
    /// Whether both paper bounds held.
    pub holds: bool,
}

/// Measures worst-case latencies of the two-bit algorithm under maximal
/// read/write concurrency with delays ≤ Δ.
pub fn bounds(n: usize, ops_per_proc: usize, seed: u64, delay: DelayModel) -> BoundsResult {
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let mut sim = SimBuilder::new(cfg)
        .seed(seed)
        .delay(delay)
        .check_every(0)
        .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
    // Writer writes back-to-back; every other process reads back-to-back.
    sim.client_plan(
        0,
        ClientPlan::ops((1..=ops_per_proc as u64).map(Operation::Write)),
    );
    for r in 1..n {
        sim.client_plan(
            r,
            ClientPlan::ops((0..ops_per_proc).map(|_| Operation::<u64>::Read)),
        );
    }
    let report = sim.run().expect("concurrent run failed");
    assert!(report.all_live_ops_completed(), "run stalled");
    twobit_lincheck::check_swmr(&report.history).expect("history must be atomic");

    let mut wl: Vec<u64> = Vec::new();
    let mut rl: Vec<u64> = Vec::new();
    for rec in &report.history.records {
        if let Some(lat) = rec.latency() {
            if rec.op.is_write() {
                wl.push(lat);
            } else {
                rl.push(lat);
            }
        }
    }
    let write_max_delta = wl.iter().copied().max().unwrap_or(0) as f64 / DELTA as f64;
    let read_max_delta = rl.iter().copied().max().unwrap_or(0) as f64 / DELTA as f64;
    BoundsResult {
        write_max_delta,
        read_max_delta,
        ops: (wl.len(), rl.len()),
        holds: write_max_delta <= 2.0 && read_max_delta <= 4.0,
    }
}

/// Runs E2 across several seeds and system sizes; renders a report.
pub fn run_bounds(seeds: u64) -> String {
    let mut out =
        String::from("## E2 — Latency bounds under concurrency (claim: write ≤ 2Δ, read ≤ 4Δ)\n\n");
    let mut t = Table::new([
        "n",
        "delay model",
        "seeds",
        "max write (Δ)",
        "max read (Δ)",
        "bound holds",
    ]);
    for &n in &[3usize, 5, 7] {
        for (dname, delay) in [
            ("fixed Δ", DelayModel::Fixed(DELTA)),
            ("uniform [1, Δ]", DelayModel::Uniform { lo: 1, hi: DELTA }),
        ] {
            let mut wmax: f64 = 0.0;
            let mut rmax: f64 = 0.0;
            let mut all_hold = true;
            for seed in 0..seeds {
                let r = bounds(n, 20, seed, delay);
                wmax = wmax.max(r.write_max_delta);
                rmax = rmax.max(r.read_max_delta);
                all_hold &= r.holds;
            }
            t.row([
                n.to_string(),
                dname.to_string(),
                seeds.to_string(),
                fmt_f64(wmax),
                fmt_f64(rmax),
                if all_hold {
                    "yes".into()
                } else {
                    "NO".to_string()
                },
            ]);
        }
    }
    out.push_str(&t.to_markdown());
    out
}

/// Runs E9: latency distributions for all four algorithms under uniform
/// `[Δ/2, Δ]` delays, sequential mixed workload.
pub fn run_distributions(n: usize, ops: usize, seed: u64) -> String {
    let mut out =
        String::from("## E9 — Latency distributions, delays uniform in [Δ/2, Δ] (Δ units)\n\n");
    let mut t = Table::new([
        "algorithm",
        "write p50",
        "write p95",
        "write max",
        "read p50",
        "read p95",
        "read max",
    ]);
    for algo in Algo::ALL {
        // Reuse the standard measurement but with jittered delays via a
        // dedicated run: measure() uses fixed Δ, so run the jittered
        // variant here.
        let m = measure_jittered(algo, n, ops, seed);
        let (mut wl, mut rl) = m;
        wl.sort_unstable();
        rl.sort_unstable();
        let d = DELTA as f64;
        t.row([
            algo.name().to_string(),
            fmt_f64(percentile(&wl, 50.0) as f64 / d),
            fmt_f64(percentile(&wl, 95.0) as f64 / d),
            fmt_f64(wl.last().copied().unwrap_or(0) as f64 / d),
            fmt_f64(percentile(&rl, 50.0) as f64 / d),
            fmt_f64(percentile(&rl, 95.0) as f64 / d),
            fmt_f64(rl.last().copied().unwrap_or(0) as f64 / d),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nExpected shape: two-bit ≈ ABD-unbounded (2Δ/4Δ class), both far below the \
         12Δ–18Δ emulated bounded algorithms.\n",
    );
    out
}

/// Jittered-delay run: returns (write latencies, read latencies) in ticks.
fn measure_jittered(algo: Algo, n: usize, ops: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    use twobit_baselines::{abd_bounded_profile, attiya_profile, AbdProcess, PhasedProcess};
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let delay = DelayModel::Uniform {
        lo: DELTA / 2,
        hi: DELTA,
    };
    let gap = 40 * DELTA;
    let writer_plan = ClientPlan::new(
        (1..=ops as u64).map(|v| twobit_simnet::PlannedOp::after(gap, Operation::Write(v))),
    );
    let reader_plan = ClientPlan::new(
        (0..ops).map(|_| twobit_simnet::PlannedOp::after(gap, Operation::<u64>::Read)),
    )
    .starting_at((ops as u64 + 2) * gap);

    macro_rules! run_with {
        ($make:expr) => {{
            let mut sim = SimBuilder::new(cfg)
                .seed(seed)
                .delay(delay)
                .check_every(0)
                .build($make);
            sim.client_plan(0, writer_plan.clone());
            sim.client_plan(1, reader_plan.clone());
            let report = sim.run().expect("jittered run failed");
            assert!(report.all_live_ops_completed());
            let mut wl = Vec::new();
            let mut rl = Vec::new();
            for rec in &report.history.records {
                if let Some(lat) = rec.latency() {
                    if rec.op.is_write() {
                        wl.push(lat);
                    } else {
                        rl.push(lat);
                    }
                }
            }
            (wl, rl)
        }};
    }

    match algo {
        Algo::TwoBit => run_with!(|id| TwoBitProcess::new(id, cfg, writer, 0u64)),
        Algo::AbdUnbounded => run_with!(|id| AbdProcess::new(id, cfg, writer, 0u64)),
        Algo::AbdBounded => {
            run_with!(|id| PhasedProcess::new(id, cfg, writer, 0u64, abd_bounded_profile(n)))
        }
        Algo::Attiya => {
            run_with!(|id| PhasedProcess::new(id, cfg, writer, 0u64, attiya_profile(n)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_with_fixed_delta() {
        let r = bounds(5, 15, 3, DelayModel::Fixed(DELTA));
        assert!(
            r.holds,
            "write {} read {}",
            r.write_max_delta, r.read_max_delta
        );
        assert_eq!(r.ops.0, 15);
        assert_eq!(r.ops.1, 15 * 4);
    }

    #[test]
    fn bounds_hold_with_jitter() {
        for seed in 0..5 {
            let r = bounds(4, 12, seed, DelayModel::Uniform { lo: 1, hi: DELTA });
            assert!(
                r.holds,
                "seed {seed}: write {} read {}",
                r.write_max_delta, r.read_max_delta
            );
        }
    }

    #[test]
    fn distribution_report_orders_algorithms() {
        let report = run_distributions(3, 3, 1);
        assert!(report.contains("two-bit"));
        assert!(report.contains("Attiya"));
    }
}
