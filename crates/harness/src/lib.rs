//! Experiment harness: regenerates every quantitative claim of the paper.
//!
//! The paper's evaluation artifact is **Table 1** (six cost metrics × four
//! algorithms) plus in-text claims (Theorem 2's message counts, the 2Δ/4Δ
//! latency bounds, the P1/P2 synchronizer properties). Each experiment
//! module reproduces one of them on the deterministic simulator (or, for
//! E10, on the live threaded runtime) and emits a markdown/CSV report:
//!
//! | module | experiment | paper source |
//! |--------|-----------|--------------|
//! | [`table1`] | E1.1–E1.6 | Table 1 |
//! | [`latency`] | E2 latency bounds, E9 distributions | Abstract, §1, §5 |
//! | [`msgs`] | E3 exact message complexity | Theorem 2 |
//! | [`crashes`] | E4 crash tolerance & majority necessity | §2.2, Thm 1 |
//! | [`synchronizer`] | E5 P1/P2 under reordering | §3.3, §5 |
//! | [`soak`] | E6 randomized linearizability soak | Lemma 10 |
//! | [`ablation`] | E7/E12 fast-path read, read-dominated mix, line 9 ablation | Fig. 1 comment, fn. 3, §4 Claim 3 |
//! | [`wire_growth`] | E8 control-bit growth | §1, §5 |
//! | [`live`] | E10 live-runtime end-to-end | whole system |
//!
//! E11 (the negative control: a deliberately broken register caught by the
//! checkers) lives in the integration test suite
//! (`tests/negative_controls.rs`).
//!
//! Run them all via the `experiments` binary:
//! `cargo run -p twobit-harness --bin experiments -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod crashes;
pub mod latency;
pub mod live;
pub mod measure;
pub mod msgs;
pub mod report;
pub mod soak;
pub mod synchronizer;
pub mod table1;
pub mod wire_growth;

pub use measure::{Algo, OpMetrics};
pub use report::Table;

/// Δ used by all experiments (ticks); latencies are reported in Δ units.
pub const DELTA: u64 = twobit_simnet::DEFAULT_DELTA;
