//! Experiment runner CLI.
//!
//! ```text
//! experiments <command> [--n N] [--writes W] [--reads R] [--seed S] [--seeds K] [--runs M]
//!
//! commands:
//!   table1          E1: regenerate Table 1 (paper vs measured)
//!   latency-bounds  E2: write ≤ 2Δ / read ≤ 4Δ under concurrency
//!   msg-complexity  E3: exact message formulas (Theorem 2)
//!   crash-tolerance E4: ≤t crashes live+atomic; >t stalls
//!   synchronizer    E5: P1/P2 bounds under reordering
//!   soak            E6: randomized linearizability soak
//!   ablation        E7: writer fast-path & read-dominated comparison
//!   wire-growth     E8: control bits vs history length
//!   latency-dist    E9: latency distributions across algorithms
//!   live            E10: live threaded runtime end-to-end
//!   all             run everything with defaults
//! ```

use std::process::ExitCode;

struct Args {
    n: usize,
    writes: usize,
    reads: usize,
    seed: u64,
    seeds: u64,
    runs: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            n: 5,
            writes: 10,
            reads: 10,
            seed: 1,
            seeds: 5,
            runs: 200,
        }
    }
}

fn parse(mut argv: std::env::Args) -> Option<(String, Args)> {
    let _bin = argv.next();
    let cmd = argv.next()?;
    let mut args = Args::default();
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i].as_str();
        let val = rest.get(i + 1)?;
        match key {
            "--n" => args.n = val.parse().ok()?,
            "--writes" => args.writes = val.parse().ok()?,
            "--reads" => args.reads = val.parse().ok()?,
            "--seed" => args.seed = val.parse().ok()?,
            "--seeds" => args.seeds = val.parse().ok()?,
            "--runs" => args.runs = val.parse().ok()?,
            _ => {
                eprintln!("unknown flag: {key}");
                return None;
            }
        }
        i += 2;
    }
    Some((cmd, args))
}

fn run_cmd(cmd: &str, a: &Args) -> Option<String> {
    use twobit_harness as h;
    Some(match cmd {
        "table1" => h::table1::run(a.n, a.writes, a.reads, a.seed),
        "latency-bounds" => h::latency::run_bounds(a.seeds),
        "msg-complexity" => {
            h::msgs::run(&[2, 3, 5, 8, 13], a.writes.min(5), a.reads.min(5), a.seed)
        }
        "crash-tolerance" => h::crashes::run(a.seed),
        "synchronizer" => h::synchronizer::run(4, 25, a.seeds),
        "soak" => h::soak::run(a.runs, a.seed),
        "ablation" => h::ablation::run(a.n, a.seed),
        "wire-growth" => h::wire_growth::run(a.n.min(5), a.seed),
        "latency-dist" => h::latency::run_distributions(a.n, a.writes, a.seed),
        "live" => h::live::run(a.n, 20, a.seed),
        _ => return None,
    })
}

const ALL: [&str; 10] = [
    "table1",
    "msg-complexity",
    "latency-bounds",
    "latency-dist",
    "crash-tolerance",
    "synchronizer",
    "ablation",
    "wire-growth",
    "soak",
    "live",
];

fn main() -> ExitCode {
    let Some((cmd, args)) = parse(std::env::args()) else {
        eprintln!(
            "usage: experiments <command> [--n N] [--writes W] [--reads R] [--seed S] \
             [--seeds K] [--runs M]\ncommands: {} | all",
            ALL.join(" | ")
        );
        return ExitCode::FAILURE;
    };
    if cmd == "all" {
        for c in ALL {
            match run_cmd(c, &args) {
                Some(report) => println!("{report}"),
                None => unreachable!("ALL contains only valid commands"),
            }
        }
        return ExitCode::SUCCESS;
    }
    match run_cmd(&cmd, &args) {
        Some(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown command: {cmd}");
            ExitCode::FAILURE
        }
    }
}
