//! Experiment E7: design-choice ablations.
//!
//! Three design points the paper calls out:
//!
//! * **Writer fast-path read** (Fig. 1's comment "the writer can directly
//!   return `history_i[w_sync_i[i]]`"): with the fast path the writer's
//!   reads are free; without it they run the full two-phase protocol.
//! * **Read-dominated workloads** (§5: "Due to the O(n) message cost of its
//!   read operation, it can benefit to read-dominated applications"): at a
//!   95/5 read/write mix, the two-bit algorithm's reads cost 2(n−1)
//!   messages versus ABD's 4(n−1) — half the read traffic.
//! * **The line 9 confirmation wait** (the second read phase): ablating it
//!   keeps the register *regular* but loses atomicity — and, a sharper
//!   empirical finding, only when `t ≥ 2`: with `t = 1` every `PROCEED`
//!   quorum intersects the ≥ 2 processes (writer + earlier reader) that
//!   already hold a previously-read value, whose line-20 guards then force
//!   the reader to catch up (see `tests/regular_vs_atomic.rs` for the
//!   argument).

use twobit_core::{TwoBitOptions, TwoBitProcess};
use twobit_proto::{Operation, ProcessId, SystemConfig};
use twobit_simnet::{ClientPlan, DelayModel, PlannedOp, SimBuilder};

use crate::measure::Algo;
use crate::report::{fmt_f64, Table};
use crate::DELTA;

/// Measures writer-issued reads with/without the fast path. Returns
/// (latency in Δ, messages per read) for each mode.
pub fn writer_read_modes(n: usize, reads: usize, seed: u64) -> [(f64, f64); 2] {
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let mut results = [(0.0, 0.0); 2];
    for (idx, fast) in [true, false].into_iter().enumerate() {
        let opts = TwoBitOptions {
            writer_fast_read: fast,
            ..TwoBitOptions::default()
        };
        let mut sim = SimBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Fixed(DELTA))
            .check_every(0)
            .build(|id| TwoBitProcess::with_options(id, cfg, writer, 0u64, opts));
        // One warm-up write, then writer-issued reads.
        let gap = 40 * DELTA;
        let mut plan = vec![PlannedOp::after(gap, Operation::Write(1u64))];
        plan.extend((0..reads).map(|_| PlannedOp::after(gap, Operation::Read)));
        sim.client_plan(0, ClientPlan::new(plan));
        let report = sim.run().expect("ablation run failed");
        assert!(report.all_live_ops_completed());
        let write_msgs = (n * (n - 1)) as u64;
        let read_msgs = (report.stats.total_sent() - write_msgs) as f64 / reads as f64;
        let max_read_latency = report
            .history
            .records
            .iter()
            .filter(|r| r.op.is_read())
            .filter_map(twobit_proto::OpRecord::latency)
            .max()
            .unwrap_or(0) as f64
            / DELTA as f64;
        results[idx] = (max_read_latency, read_msgs);
    }
    results
}

/// Compares two-bit and unbounded ABD on a read-dominated (95/5) workload.
/// Returns (total messages, mean read latency in Δ) per algorithm.
pub fn read_dominated(n: usize, total_ops: usize, seed: u64) -> [(u64, f64); 2] {
    let writes = (total_ops / 20).max(1);
    let reads_per_reader = (total_ops - writes) / (n - 1).max(1);
    let mut out = [(0u64, 0.0); 2];
    for (idx, algo) in [Algo::TwoBit, Algo::AbdUnbounded].into_iter().enumerate() {
        // Sequential mixed run (single sim): writer writes slowly, readers
        // poll concurrently.
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        macro_rules! go {
            ($make:expr) => {{
                let mut sim = SimBuilder::new(cfg)
                    .seed(seed)
                    .delay(DelayModel::Uniform {
                        lo: DELTA / 2,
                        hi: DELTA,
                    })
                    .check_every(0)
                    .build($make);
                sim.client_plan(
                    0,
                    ClientPlan::new(
                        (1..=writes as u64)
                            .map(|v| PlannedOp::after(10 * DELTA, Operation::Write(v))),
                    ),
                );
                for r in 1..n {
                    sim.client_plan(
                        r,
                        ClientPlan::ops((0..reads_per_reader).map(|_| Operation::<u64>::Read)),
                    );
                }
                let report = sim.run().expect("read-dominated run failed");
                assert!(report.all_live_ops_completed());
                twobit_lincheck::check_swmr(&report.history).expect("atomicity");
                let lats: Vec<u64> = report
                    .history
                    .records
                    .iter()
                    .filter(|r| r.op.is_read())
                    .filter_map(|r| r.latency())
                    .collect();
                let mean =
                    lats.iter().sum::<u64>() as f64 / lats.len().max(1) as f64 / DELTA as f64;
                (report.stats.total_sent(), mean)
            }};
        }
        out[idx] = match algo {
            Algo::TwoBit => go!(|id| TwoBitProcess::new(id, cfg, writer, 0u64)),
            Algo::AbdUnbounded => {
                go!(|id| twobit_baselines::AbdProcess::new(id, cfg, writer, 0u64))
            }
            _ => unreachable!(),
        };
    }
    out
}

/// Ablates the line 9 confirmation wait: runs adversarial schedules with
/// the wait disabled and counts atomicity violations (all of which must be
/// new/old inversions, and regularity must survive). Returns
/// (inversions found, runs) for the given system size.
pub fn read_confirmation_off(n: usize, seeds: u64) -> (u64, u64) {
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let mut inversions = 0u64;
    for seed in 0..seeds {
        let opts = TwoBitOptions {
            read_confirmation: false,
            ..TwoBitOptions::default()
        };
        let mut sim = SimBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Spiky {
                lo: 10,
                hi: DELTA / 2,
                spike_ppm: 400_000,
                spike_lo: 4 * DELTA,
                spike_hi: 12 * DELTA,
            })
            .check_every(0)
            .build(|id| TwoBitProcess::with_options(id, cfg, writer, 0u64, opts));
        sim.client_plan(
            0,
            ClientPlan::new((1..=6u64).map(|v| PlannedOp::after(DELTA, Operation::Write(v)))),
        );
        for r in 1..n {
            sim.client_plan(
                r,
                ClientPlan::new(
                    (0..10).map(|_| {
                        PlannedOp::after(DELTA / 3 + r as u64 * 119, Operation::<u64>::Read)
                    }),
                )
                .starting_at(r as u64 * 173),
            );
        }
        let report = sim.run().expect("ablated run failed");
        assert!(report.all_live_ops_completed());
        twobit_lincheck::check_swmr_regular(&report.history)
            .expect("regularity must survive the line 9 ablation");
        if twobit_lincheck::check_swmr(&report.history).is_err() {
            inversions += 1;
        }
    }
    (inversions, seeds)
}

/// Runs E7 and renders the report.
pub fn run(n: usize, seed: u64) -> String {
    let mut out =
        String::from("## E7 — Ablations\n\n### Writer read fast path (Fig. 1 comment)\n\n");
    let modes = writer_read_modes(n, 10, seed);
    let mut t = Table::new(["mode", "writer-read latency (Δ)", "msgs per writer-read"]);
    t.row([
        "fast path (paper)".to_string(),
        fmt_f64(modes[0].0),
        fmt_f64(modes[0].1),
    ]);
    t.row([
        "full protocol".to_string(),
        fmt_f64(modes[1].0),
        fmt_f64(modes[1].1),
    ]);
    out.push_str(&t.to_markdown());

    out.push_str("\n### Read-dominated workload, 95% reads (§5 claim)\n\n");
    let rd = read_dominated(n, 200, seed);
    let mut t = Table::new(["algorithm", "total msgs", "mean read latency (Δ)"]);
    t.row([
        "proposed (two-bit)".to_string(),
        rd[0].0.to_string(),
        fmt_f64(rd[0].1),
    ]);
    t.row([
        "ABD95 unbounded".to_string(),
        rd[1].0.to_string(),
        fmt_f64(rd[1].1),
    ]);
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nReads are 2(n−1) messages for the two-bit algorithm vs 4(n−1) for ABD \
         (PROCEED-signal vs value-shipping design, paper footnote 3), so read-heavy \
         mixes favour the proposed algorithm.\n",
    );

    out.push_str("\n### Line 9 confirmation wait ablated (reads end after the PROCEED quorum)\n\n");
    let mut t = Table::new([
        "n",
        "t",
        "runs",
        "runs with new/old inversion",
        "regular held",
    ]);
    for nn in [4usize, 5] {
        // Inversions are rare events; scan enough schedules to see them.
        let (inv, runs) = read_confirmation_off(nn, 400);
        t.row([
            nn.to_string(),
            SystemConfig::max_resilience(nn).t().to_string(),
            runs.to_string(),
            inv.to_string(),
            "yes (all runs)".to_string(),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push_str(
        "\nWithout the second wait the register degrades from atomic to regular — but \
         only at t ≥ 2: with t = 1 every PROCEED quorum intersects the processes that \
         already hold a previously-read value, and their line-20 guards force the reader \
         to catch up, making line 9 redundant at that resilience.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_is_free() {
        let [(fast_lat, fast_msgs), (slow_lat, slow_msgs)] = writer_read_modes(5, 5, 3);
        assert_eq!(fast_lat, 0.0);
        assert_eq!(fast_msgs, 0.0);
        assert!(slow_lat >= 2.0);
        assert_eq!(slow_msgs, 8.0); // 2(n−1)
    }

    #[test]
    fn read_dominated_favors_two_bit() {
        let [(tb_msgs, _), (abd_msgs, _)] = read_dominated(4, 100, 5);
        assert!(
            tb_msgs < abd_msgs,
            "two-bit {tb_msgs} should beat ABD {abd_msgs} on read-heavy mixes"
        );
    }
}
