//! Experiment E3: exact message complexity (Theorem 2).
//!
//! Theorem 2 gives O-bounds; the exact counts implied by the algorithm are
//! sharper and checkable: a write ultimately costs **n(n−1)** `WRITE`
//! messages (the writer's broadcast plus exactly one forward on every other
//! ordered channel — Lemma 5 shows each ordered pair exchanges exactly one
//! message per written value), and a read costs **(n−1)** `READ` plus
//! **(n−1)** `PROCEED` messages. This experiment verifies the formulas
//! across system sizes.

use crate::measure::Algo;
use crate::report::{fmt_f64, Table};

/// Runs E3 for the given sizes; panics if a formula is violated.
pub fn run(sizes: &[usize], writes: usize, reads: usize, seed: u64) -> String {
    let mut out =
        String::from("## E3 — Exact message complexity of the two-bit algorithm (Theorem 2)\n\n");
    let mut t = Table::new([
        "n",
        "msgs/write (measured)",
        "n(n-1) (formula)",
        "msgs/read (measured)",
        "2(n-1) (formula)",
        "match",
    ]);
    for &n in sizes {
        let m = Algo::TwoBit.measure(n, writes, reads, seed);
        let wf = (n * (n - 1)) as f64;
        let rf = (2 * (n - 1)) as f64;
        let ok = m.msgs_per_write == wf && m.msgs_per_read == rf;
        t.row([
            n.to_string(),
            fmt_f64(m.msgs_per_write),
            fmt_f64(wf),
            fmt_f64(m.msgs_per_read),
            fmt_f64(rf),
            if ok {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
        assert!(ok, "message formula violated at n={n}");
    }
    out.push_str(&t.to_markdown());
    out.push_str("\nTheorem 2's O(n²)/O(n) bounds hold with the exact constants above.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_hold_for_small_sizes() {
        let report = run(&[2, 3, 5], 3, 3, 11);
        assert!(report.contains("yes"));
        assert!(!report.contains("| NO |"));
    }
}
