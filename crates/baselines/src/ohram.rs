//! Oh-RAM fast reads: the one-and-a-half-round SWMR register of
//! *Oh-RAM! One and a Half Round Atomic Memory* (Hadjistasi, Nicolaou &
//! Schwarzmann, arXiv 1610.08373), with the server-relay structure of
//! *Time-Efficient Read/Write Register* (arXiv 1601.04820).
//!
//! The paper's two-bit protocol wins on wire bits; this automaton competes
//! on the other axis — **message delays per read**:
//!
//! * **write(v)** (writer only): `seq += 1`, broadcast `Write⟨seq, v⟩`,
//!   wait for a quorum of `WriteAck`s counting itself — one round (2Δ),
//!   exactly the classic SWMR shape;
//! * **read()** — the hybrid one-and-a-half-round structure. The reader
//!   broadcasts `Read⟨rid⟩`; every server (the reader included — each
//!   process plays its own server role locally) reacts twice:
//!   1. it **answers directly** with `ReadAck⟨rid, ts, v⟩`, its current
//!      pair, and
//!   2. it **relays** that pair to all servers as
//!      `Relay⟨reader, rid, ts, v⟩`; a server that has absorbed relays
//!      from a quorum answers `RelayAck⟨rid, ts, v⟩` with its (now
//!      updated) pair.
//!
//!   The reader completes by whichever rule fires first:
//!   * **fast (one round, 2Δ)**: some quorum of direct acks (its own
//!     pair counts) reports *the same* timestamp — return it;
//!   * **relay (one and a half rounds, 3Δ)**: a quorum of relay acks —
//!     return the **minimum** timestamp among them.
//!
//! Why each rule is atomic (SWMR, `n > 2t`, quorum `= n − t`):
//!
//! * *Fast*: a uniform quorum at `ts` means `n − t` processes held a pair
//!   `≥ ts` at their ack time (pairs are monotone). Any later operation's
//!   evidence quorum intersects it, so later fast reads see a uniform
//!   value `≥ ts`, later relay reads a minimum `≥ ts`, and any write that
//!   completed before the read began sits `≤ ts` by the same
//!   intersection. Mixing timestamps never completes the fast rule — that
//!   is exactly the case it forbids.
//! * *Relay minimum*: every relay-acker first absorbed relays from a full
//!   quorum. That relay quorum intersects the evidence quorum of every
//!   previously completed operation, and those relays were *sent* after
//!   this read began (a relay answers this read's `Read`), hence after
//!   the earlier operation completed — so every acker absorbed a pair
//!   `≥` every earlier result before answering, and the minimum over the
//!   ack quorum still dominates all of them. Taking the **maximum** here
//!   would be unsound: a lone ack can report an in-flight write held by
//!   no quorum, which a later read is free to miss —
//!   [`OhRamProcess::with_no_relay`] ablates the relay wait and returns
//!   exactly that maximum, and the model checker catches it
//!   (`tests/negative_controls.rs`).
//!
//! The two evidence pools are never mixed: fast completion counts only
//! direct acks, relay completion only relay acks.
//!
//! **Recovery** (the PR 9 lifecycle) rides on the snapshot's *length*:
//! a process's snapshot is its dense write history — `Write` messages
//! from the single writer arrive in link order, so the history has no
//! holes — padded out to its eagerly-adopted pair when a relay has pushed
//! the pair ahead of the writes actually received. Only the length (the
//! barrier timestamp) and the last element (the barrier value) of a
//! snapshot are load-bearing, and timestamps name unique values in SWMR,
//! so the longest snapshot among live donors is the *global* maximum pair
//! — the barrier never regresses below any completed operation (every
//! completed operation leaves `≥ n − t − 1 ≥ t ≥ 1` live holders), and
//! the writer resumes strictly above every timestamp it ever issued, so
//! a sequence number is never reused with a different value.

use std::collections::BTreeMap;

use twobit_proto::bits::{gamma_bits, BitReader, BitWriter, WireError};
use twobit_proto::payload::bits_for;
use twobit_proto::{
    Automaton, Effects, MessageCost, OpId, Operation, Payload, ProcessId, SystemConfig, WireMessage,
};

/// Messages of the Oh-RAM register. Six wire types, three tag bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OhRamMsg<V> {
    /// The writer's phase-2 broadcast: sequence number and new value.
    Write {
        /// The write's sequence number (the SWMR timestamp).
        seq: u64,
        /// The written value.
        value: V,
    },
    /// Acknowledges a `Write`.
    WriteAck {
        /// Echoed sequence number.
        seq: u64,
    },
    /// A reader's broadcast query.
    Read {
        /// Request identifier, unique per reader.
        rid: u64,
    },
    /// A server's *direct* answer to a `Read`: its current pair.
    ReadAck {
        /// Echoed request identifier.
        rid: u64,
        /// The responder's timestamp.
        ts: u64,
        /// The responder's value.
        value: V,
    },
    /// The server-to-server relay of a read answer.
    Relay {
        /// The process whose read this relay serves.
        reader: u32,
        /// The read's request identifier.
        rid: u64,
        /// The relaying server's timestamp.
        ts: u64,
        /// The relaying server's value.
        value: V,
    },
    /// A server's answer after absorbing a quorum of relays.
    RelayAck {
        /// Echoed request identifier.
        rid: u64,
        /// The responder's (relay-updated) timestamp.
        ts: u64,
        /// The responder's value.
        value: V,
    },
}

const TAG_BITS: u64 = 3;

impl<V: Payload> WireMessage for OhRamMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            OhRamMsg::Write { .. } => "OHRAM_WRITE",
            OhRamMsg::WriteAck { .. } => "OHRAM_WRITE_ACK",
            OhRamMsg::Read { .. } => "OHRAM_READ",
            OhRamMsg::ReadAck { .. } => "OHRAM_READ_ACK",
            OhRamMsg::Relay { .. } => "OHRAM_RELAY",
            OhRamMsg::RelayAck { .. } => "OHRAM_RELAY_ACK",
        }
    }

    fn cost(&self) -> MessageCost {
        match self {
            OhRamMsg::Write { seq, value } => {
                MessageCost::new(TAG_BITS + bits_for(*seq), value.data_bits())
            }
            OhRamMsg::WriteAck { seq } => MessageCost::new(TAG_BITS + bits_for(*seq), 0),
            OhRamMsg::Read { rid } => MessageCost::new(TAG_BITS + bits_for(*rid), 0),
            OhRamMsg::ReadAck { rid, ts, value } | OhRamMsg::RelayAck { rid, ts, value } => {
                MessageCost::new(TAG_BITS + bits_for(*rid) + bits_for(*ts), value.data_bits())
            }
            OhRamMsg::Relay {
                reader,
                rid,
                ts,
                value,
            } => MessageCost::new(
                TAG_BITS + bits_for(u64::from(*reader)) + bits_for(*rid) + bits_for(*ts),
                value.data_bits(),
            ),
        }
    }

    /// Wire size: 3-bit tag, then every integer field gamma-coded
    /// (`γ(x + 1)`, matching the ABD/MWMR codec convention), then the
    /// value's own encoding where present.
    fn encoded_bits(&self) -> u64 {
        TAG_BITS
            + match self {
                OhRamMsg::Write { seq, value } => gamma_bits(seq + 1) + value.encoded_bits(),
                OhRamMsg::WriteAck { seq } => gamma_bits(seq + 1),
                OhRamMsg::Read { rid } => gamma_bits(rid + 1),
                OhRamMsg::ReadAck { rid, ts, value } | OhRamMsg::RelayAck { rid, ts, value } => {
                    gamma_bits(rid + 1) + gamma_bits(ts + 1) + value.encoded_bits()
                }
                OhRamMsg::Relay {
                    reader,
                    rid,
                    ts,
                    value,
                } => {
                    gamma_bits(u64::from(*reader) + 1)
                        + gamma_bits(rid + 1)
                        + gamma_bits(ts + 1)
                        + value.encoded_bits()
                }
            }
    }

    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        match self {
            OhRamMsg::Write { seq, value } => {
                w.put_bits(0, TAG_BITS as u32);
                w.put_gamma(seq + 1);
                value.encode_into(w)
            }
            OhRamMsg::WriteAck { seq } => {
                w.put_bits(1, TAG_BITS as u32);
                w.put_gamma(seq + 1);
                Ok(())
            }
            OhRamMsg::Read { rid } => {
                w.put_bits(2, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                Ok(())
            }
            OhRamMsg::ReadAck { rid, ts, value } => {
                w.put_bits(3, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                w.put_gamma(ts + 1);
                value.encode_into(w)
            }
            OhRamMsg::Relay {
                reader,
                rid,
                ts,
                value,
            } => {
                w.put_bits(4, TAG_BITS as u32);
                w.put_gamma(u64::from(*reader) + 1);
                w.put_gamma(rid + 1);
                w.put_gamma(ts + 1);
                value.encode_into(w)
            }
            OhRamMsg::RelayAck { rid, ts, value } => {
                w.put_bits(5, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                w.put_gamma(ts + 1);
                value.encode_into(w)
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        match r.get_bits(TAG_BITS as u32)? {
            0 => {
                let seq = r.get_gamma()? - 1;
                Ok(OhRamMsg::Write {
                    seq,
                    value: V::decode(r)?,
                })
            }
            1 => Ok(OhRamMsg::WriteAck {
                seq: r.get_gamma()? - 1,
            }),
            2 => Ok(OhRamMsg::Read {
                rid: r.get_gamma()? - 1,
            }),
            3 => {
                let rid = r.get_gamma()? - 1;
                let ts = r.get_gamma()? - 1;
                Ok(OhRamMsg::ReadAck {
                    rid,
                    ts,
                    value: V::decode(r)?,
                })
            }
            4 => {
                let reader = r.get_gamma()? - 1;
                let reader = u32::try_from(reader).map_err(|_| WireError::Overflow)?;
                let rid = r.get_gamma()? - 1;
                let ts = r.get_gamma()? - 1;
                Ok(OhRamMsg::Relay {
                    reader,
                    rid,
                    ts,
                    value: V::decode(r)?,
                })
            }
            5 => {
                let rid = r.get_gamma()? - 1;
                let ts = r.get_gamma()? - 1;
                Ok(OhRamMsg::RelayAck {
                    rid,
                    ts,
                    value: V::decode(r)?,
                })
            }
            _ => Err(WireError::Malformed("unassigned OHRAM tag")),
        }
    }
}

/// Per-`(reader, rid)` server-side relay bookkeeping.
#[derive(Clone, Debug)]
struct RelayEntry {
    /// Which servers' relays this process has absorbed (itself included).
    seen: Vec<bool>,
    count: usize,
    /// Whether the relay ack has been sent (exactly once per read).
    acked: bool,
}

impl RelayEntry {
    fn new(n: usize) -> Self {
        RelayEntry {
            seen: vec![false; n],
            count: 0,
            acked: false,
        }
    }

    fn note(&mut self, from: ProcessId) -> bool {
        if self.seen[from.index()] {
            return false;
        }
        self.seen[from.index()] = true;
        self.count += 1;
        true
    }
}

/// The reader/writer side of an operation in flight.
#[derive(Clone, Debug)]
enum Pending<V> {
    Write {
        op_id: OpId,
        seq: u64,
        /// Which processes have acknowledged (the writer itself included).
        acks: Vec<bool>,
        count: usize,
    },
    Read {
        op_id: OpId,
        rid: u64,
        /// Per-source direct acks (the reader's own pair included).
        direct: Vec<Option<(u64, V)>>,
        /// Per-source relay acks.
        relay: Vec<Option<(u64, V)>>,
        relay_count: usize,
    },
}

/// One process of the Oh-RAM SWMR register. Every process serves reads;
/// only `writer` may write.
#[derive(Clone, Debug)]
pub struct OhRamProcess<V> {
    id: ProcessId,
    cfg: SystemConfig,
    writer: ProcessId,
    /// The eagerly-adopted pair — what acks and relays report.
    ts: u64,
    value: V,
    /// Dense history of `Write`s received in order (`history[k]` is write
    /// `k`'s value, `history[0] = v0`). The pair may run *ahead* of this
    /// via relay adoption; it is never behind.
    history: Vec<V>,
    /// Defensive parking for a `Write` arriving above `history.len()`.
    /// Single writer + ordered links make this unreachable in every
    /// supported substrate; if a transport ever reorders, density — which
    /// recovery's barrier argument rests on — survives.
    stash: BTreeMap<u64, V>,
    rid_counter: u64,
    pending: Option<Pending<V>>,
    relays: BTreeMap<(u32, u64), RelayEntry>,
    /// Negative-control fault: see [`OhRamProcess::with_no_relay`].
    no_relay: bool,
}

impl<V: Payload> OhRamProcess<V> {
    /// Creates process `id` with single writer `writer` and initial
    /// register value `v0`.
    pub fn new(id: ProcessId, cfg: SystemConfig, writer: ProcessId, v0: V) -> Self {
        assert!(id.index() < cfg.n(), "process id out of range");
        assert!(writer.index() < cfg.n(), "writer id out of range");
        OhRamProcess {
            id,
            cfg,
            writer,
            ts: 0,
            value: v0.clone(),
            history: vec![v0],
            stash: BTreeMap::new(),
            rid_counter: 0,
            pending: None,
            relays: BTreeMap::new(),
            no_relay: false,
        }
    }

    /// A deliberately **broken** variant for checker negative controls:
    /// servers answer reads directly but never relay, and the reader —
    /// with no relay quorum to wait for — returns the **maximum** over a
    /// quorum of direct acks without requiring uniformity (and without
    /// the healthy reader's adopt-on-return write-back). A lone ack can
    /// carry an in-flight write held by no quorum, which a subsequent
    /// read is free to miss: the new/old inversion the relay round
    /// exists to prevent, and exactly what the model checker must find.
    pub fn with_no_relay(id: ProcessId, cfg: SystemConfig, writer: ProcessId, v0: V) -> Self {
        OhRamProcess {
            no_relay: true,
            ..Self::new(id, cfg, writer, v0)
        }
    }

    /// Current `(timestamp, value)` pair.
    pub fn local_pair(&self) -> (u64, &V) {
        (self.ts, &self.value)
    }

    fn me(&self) -> usize {
        self.id.index()
    }

    fn absorb(&mut self, ts: u64, value: V) {
        if ts > self.ts {
            self.ts = ts;
            self.value = value;
        }
    }

    fn broadcast(&self, msg: &OhRamMsg<V>, fx: &mut Effects<OhRamMsg<V>, V>) {
        for j in self.cfg.peers(self.id).collect::<Vec<_>>() {
            fx.send(j, msg.clone());
        }
    }

    fn next_rid(&mut self) -> u64 {
        self.rid_counter += 1;
        self.rid_counter
    }

    /// Absorbs a `Write` into the dense history (parking it if a gap ever
    /// appeared) and into the pair.
    fn absorb_write(&mut self, seq: u64, value: V) {
        let next = self.history.len() as u64;
        if seq == next {
            self.history.push(value.clone());
        } else if seq > next {
            self.stash.insert(seq, value.clone());
        }
        while let Some(v) = self.stash.remove(&(self.history.len() as u64)) {
            self.history.push(v);
        }
        self.absorb(seq, value);
    }

    /// The server half of `Read` handling, shared by the wire path and the
    /// reader's own local participation: answer directly, then relay.
    /// Returns the relay broadcast's self-note result so the caller can
    /// check this server's own relay quorum.
    fn serve_read(&mut self, reader: ProcessId, rid: u64, fx: &mut Effects<OhRamMsg<V>, V>) {
        if reader != self.id {
            fx.send(
                reader,
                OhRamMsg::ReadAck {
                    rid,
                    ts: self.ts,
                    value: self.value.clone(),
                },
            );
        }
        if self.no_relay {
            return;
        }
        self.broadcast(
            &OhRamMsg::Relay {
                reader: reader.index() as u32,
                rid,
                ts: self.ts,
                value: self.value.clone(),
            },
            fx,
        );
        // This server's own relay counts toward its own quorum.
        self.note_relay(self.id, reader.index() as u32, rid, fx);
    }

    /// Records one relay for `(reader, rid)` at this server and sends the
    /// relay ack once a quorum of relays has been absorbed.
    fn note_relay(
        &mut self,
        from: ProcessId,
        reader: u32,
        rid: u64,
        fx: &mut Effects<OhRamMsg<V>, V>,
    ) {
        let n = self.cfg.n();
        let quorum = self.cfg.quorum();
        let entry = self
            .relays
            .entry((reader, rid))
            .or_insert_with(|| RelayEntry::new(n));
        if !entry.note(from) {
            return;
        }
        let fire = !entry.acked && entry.count >= quorum;
        if fire {
            entry.acked = true;
        }
        if entry.acked && entry.count == n {
            // Every server has relayed; nothing more can arrive.
            self.relays.remove(&(reader, rid));
        }
        if fire {
            let ack = OhRamMsg::RelayAck {
                rid,
                ts: self.ts,
                value: self.value.clone(),
            };
            let reader = ProcessId::new(reader as usize);
            if reader == self.id {
                // Our own relay ack: record it directly.
                let (ts, value) = (self.ts, self.value.clone());
                self.record_relay_ack(self.id, rid, ts, value, fx);
            } else {
                fx.send(reader, ack);
            }
        }
    }

    /// Reader side: one direct ack arrived (or was self-contributed).
    fn record_direct_ack(
        &mut self,
        from: ProcessId,
        rid: u64,
        ts: u64,
        value: V,
        fx: &mut Effects<OhRamMsg<V>, V>,
    ) {
        if !self.no_relay {
            // Adopt-on-return: harmless (pairs are monotone) and it keeps
            // this reader's own future fast quorums fresh. The ablation
            // skips it — see `with_no_relay`.
            self.absorb(ts, value.clone());
        }
        let quorum = self.cfg.quorum();
        let no_relay = self.no_relay;
        let Some(Pending::Read {
            op_id,
            rid: want,
            direct,
            ..
        }) = self.pending.as_mut()
        else {
            return;
        };
        if rid != *want || direct[from.index()].is_some() {
            return;
        }
        direct[from.index()] = Some((ts, value.clone()));
        let op_id = *op_id;
        if no_relay {
            // Ablated completion rule: any quorum of direct acks, maximum
            // pair, no uniformity demanded. Unsound by design.
            let acks: Vec<&(u64, V)> = direct.iter().flatten().collect();
            if acks.len() >= quorum {
                let (_, v) = acks
                    .iter()
                    .max_by_key(|(t, _)| *t)
                    .expect("quorum is non-empty");
                let v = v.clone();
                self.pending = None;
                fx.complete_read(op_id, v);
            }
            return;
        }
        // Fast rule: a quorum of direct acks all carrying the same
        // timestamp. Only acks at exactly `ts` are evidence for `ts`.
        let uniform = direct.iter().flatten().filter(|(t, _)| *t == ts).count();
        if uniform >= quorum {
            self.pending = None;
            fx.complete_read(op_id, value);
        }
    }

    /// Reader side: one relay ack arrived (or was self-contributed).
    fn record_relay_ack(
        &mut self,
        from: ProcessId,
        rid: u64,
        ts: u64,
        value: V,
        fx: &mut Effects<OhRamMsg<V>, V>,
    ) {
        self.absorb(ts, value.clone());
        let quorum = self.cfg.quorum();
        let Some(Pending::Read {
            op_id,
            rid: want,
            relay,
            relay_count,
            ..
        }) = self.pending.as_mut()
        else {
            return;
        };
        if rid != *want || relay[from.index()].is_some() {
            return;
        }
        relay[from.index()] = Some((ts, value));
        *relay_count += 1;
        if *relay_count >= quorum {
            // Relay rule: minimum over the ack quorum (see the module
            // docs for why minimum — and only minimum — is atomic here).
            let (_, v) = relay
                .iter()
                .flatten()
                .min_by_key(|(t, _)| *t)
                .expect("quorum is non-empty");
            let v = v.clone();
            let op_id = *op_id;
            self.pending = None;
            fx.complete_read(op_id, v);
        }
    }
}

impl<V: Payload> Automaton for OhRamProcess<V> {
    type Value = V;
    type Msg = OhRamMsg<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// # Panics
    ///
    /// Panics if an operation is invoked while another is pending, or if a
    /// process other than the writer invokes `write`.
    fn on_invoke(&mut self, op_id: OpId, op: Operation<V>, fx: &mut Effects<OhRamMsg<V>, V>) {
        assert!(
            self.pending.is_none(),
            "{}: operation already pending",
            self.id
        );
        match op {
            Operation::Write(v) => {
                assert_eq!(self.id, self.writer, "SWMR: only the writer writes");
                let seq = self.history.len() as u64;
                self.absorb_write(seq, v.clone());
                let mut acks = vec![false; self.cfg.n()];
                acks[self.me()] = true;
                self.pending = Some(Pending::Write {
                    op_id,
                    seq,
                    acks,
                    count: 1,
                });
                self.broadcast(&OhRamMsg::Write { seq, value: v }, fx);
            }
            Operation::Read => {
                let rid = self.next_rid();
                let n = self.cfg.n();
                self.pending = Some(Pending::Read {
                    op_id,
                    rid,
                    direct: vec![None; n],
                    relay: vec![None; n],
                    relay_count: 0,
                });
                self.broadcast(&OhRamMsg::Read { rid }, fx);
                // Our own pair is the first direct ack...
                let (ts, value) = (self.ts, self.value.clone());
                self.record_direct_ack(self.id, rid, ts, value, fx);
                // ...and we play our own server role: relay to everyone.
                self.serve_read(self.id, rid, fx);
            }
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: OhRamMsg<V>, fx: &mut Effects<OhRamMsg<V>, V>) {
        match msg {
            OhRamMsg::Write { seq, value } => {
                self.absorb_write(seq, value);
                fx.send(from, OhRamMsg::WriteAck { seq });
            }
            OhRamMsg::WriteAck { seq } => {
                let quorum = self.cfg.quorum();
                if let Some(Pending::Write {
                    op_id,
                    seq: want,
                    acks,
                    count,
                }) = self.pending.as_mut()
                {
                    if seq == *want && !acks[from.index()] {
                        acks[from.index()] = true;
                        *count += 1;
                        if *count >= quorum {
                            let op_id = *op_id;
                            self.pending = None;
                            fx.complete_write(op_id);
                        }
                    }
                }
            }
            OhRamMsg::Read { rid } => {
                self.serve_read(from, rid, fx);
            }
            OhRamMsg::ReadAck { rid, ts, value } => {
                self.record_direct_ack(from, rid, ts, value, fx);
            }
            OhRamMsg::Relay {
                reader,
                rid,
                ts,
                value,
            } => {
                self.absorb(ts, value);
                self.note_relay(from, reader, rid, fx);
            }
            OhRamMsg::RelayAck { rid, ts, value } => {
                self.record_relay_ack(from, rid, ts, value, fx);
            }
        }
    }

    /// Local memory: the dense history, the pair, and the transient relay
    /// bookkeeping. Like the paper's protocol the history grows with the
    /// write count — Oh-RAM trades neither its unbounded local state nor
    /// its bit budget away; it buys message delays.
    fn state_bits(&self) -> u64 {
        let history_bits: u64 = self.history.iter().map(Payload::data_bits).sum();
        let stash_bits: u64 = self.stash.values().map(|v| 64 + v.data_bits()).sum();
        let relay_bits: u64 = self.relays.values().map(|e| e.seen.len() as u64 + 64).sum();
        history_bits + stash_bits + relay_bits + bits_for(self.ts) + self.value.data_bits()
    }

    fn swmr_writer(&self) -> Option<ProcessId> {
        Some(self.writer)
    }

    /// Donor side of recovery: the dense history, padded with the current
    /// value out to the eagerly-adopted pair when relays have pushed the
    /// pair ahead of the writes received. Only the snapshot's length (the
    /// barrier timestamp) and last element (the barrier value — unique
    /// per timestamp in SWMR) are load-bearing; see the module docs.
    fn recovery_snapshot(&self) -> Option<Vec<V>> {
        let mut snap = self.history.clone();
        if self.ts + 1 > snap.len() as u64 {
            snap.resize(
                usize::try_from(self.ts + 1).expect("timestamps fit usize"),
                self.value.clone(),
            );
        }
        Some(snap)
    }

    /// Rebuilds this (recovering) process at the barrier: the snapshot is
    /// the longest among the live donors, i.e. the global maximum pair, so
    /// adopting its end as the pair and its length as the writer's resume
    /// point never regresses a completed operation and never reuses a
    /// sequence number.
    fn install_recovery(&mut self, snapshot: &[V]) {
        debug_assert!(!snapshot.is_empty(), "snapshot always contains v0");
        self.history = snapshot.to_vec();
        self.ts = snapshot.len() as u64 - 1;
        self.value = snapshot.last().expect("non-empty").clone();
        self.stash.clear();
        self.relays.clear();
        self.pending = None;
        self.rid_counter = 0;
    }

    /// Hard-resets this (live) process to the barrier when `rejoining`
    /// comes back. The barrier is the global maximum pair, so this never
    /// regresses the local pair; relay bookkeeping is dropped because the
    /// incarnation fence discards every pre-recovery frame, and a pending
    /// operation resolves *at* the barrier — the recovery point is its
    /// linearization point (a pending write's timestamp is `≤` the
    /// barrier because this process's own snapshot was on offer).
    fn apply_rejoin(
        &mut self,
        rejoining: ProcessId,
        snapshot: &[V],
        fx: &mut Effects<OhRamMsg<V>, V>,
    ) {
        debug_assert_ne!(
            rejoining, self.id,
            "the rejoining process installs, not rejoins"
        );
        let barrier = snapshot.len() as u64 - 1;
        debug_assert!(
            barrier >= self.ts,
            "the barrier is the global maximum pair ({} < {})",
            barrier,
            self.ts,
        );
        self.history = snapshot.to_vec();
        self.ts = barrier;
        self.value = snapshot.last().expect("non-empty").clone();
        self.stash.clear();
        self.relays.clear();
        match self.pending.take() {
            Some(Pending::Write { op_id, .. }) => fx.complete_write(op_id),
            Some(Pending::Read { op_id, .. }) => fx.complete_read(op_id, self.value.clone()),
            None => {}
        }
    }

    /// Locally-checkable invariants of the hybrid structure:
    ///
    /// * the pair never trails the dense history (`ts ≥ |history| − 1`),
    ///   and when it sits exactly at the top the values agree;
    /// * the writer's pair *is* its history top (relays can only carry
    ///   timestamps the writer already issued) and its stash is empty;
    /// * only the writer ever has a write pending;
    /// * a relay entry acks only on a full quorum of distinct relays.
    fn check_local_invariants(&self) -> Result<(), String> {
        let top = self.history.len() as u64 - 1;
        if self.ts < top {
            return Err(format!("pair ts {} trails history top {top}", self.ts));
        }
        if self.id == self.writer {
            if self.ts != top {
                return Err(format!("writer pair ts {} != history top {top}", self.ts));
            }
            if !self.stash.is_empty() {
                return Err("writer has stashed writes".into());
            }
        }
        if matches!(self.pending, Some(Pending::Write { .. })) && self.id != self.writer {
            return Err("non-writer has a write pending".into());
        }
        for ((reader, rid), e) in &self.relays {
            if e.acked && e.count < self.cfg.quorum() {
                return Err(format!(
                    "relay entry ({reader}, {rid}) acked below quorum ({})",
                    e.count
                ));
            }
            if e.count != e.seen.iter().filter(|s| **s).count() {
                return Err(format!("relay entry ({reader}, {rid}) count drifted"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use twobit_proto::OpOutcome;

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::max_resilience(n)
    }

    fn procs(n: usize) -> Vec<OhRamProcess<u64>> {
        (0..n)
            .map(|i| OhRamProcess::new(ProcessId::new(i), cfg(n), ProcessId::new(0), 0u64))
            .collect()
    }

    /// Synchronously runs all traffic to quiescence, FIFO. Returns the
    /// completions harvested along the way.
    fn settle(
        ps: &mut [OhRamProcess<u64>],
        fx: Effects<OhRamMsg<u64>, u64>,
        origin: ProcessId,
    ) -> Vec<(OpId, OpOutcome<u64>)> {
        let mut fx = fx;
        let mut done: Vec<_> = fx.drain_completions().collect();
        let mut q: VecDeque<(ProcessId, ProcessId, OhRamMsg<u64>)> =
            fx.drain_sends().map(|(to, m)| (origin, to, m)).collect();
        while let Some((from, to, m)) = q.pop_front() {
            let mut fx = Effects::new();
            ps[to.index()].on_message(from, m, &mut fx);
            done.extend(fx.drain_completions());
            for (next, m2) in fx.drain_sends() {
                q.push_back((to, next, m2));
            }
        }
        done
    }

    #[test]
    fn write_is_one_round_and_installs_everywhere() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(7), &mut fx);
        let done = settle(&mut ps, fx, ProcessId::new(0));
        assert!(done
            .iter()
            .any(|(id, o)| *id == OpId::new(0) && matches!(o, OpOutcome::Written)));
        for p in &ps {
            assert_eq!(p.local_pair(), (1, &7));
            assert_eq!(p.history, vec![0, 7]);
            p.check_local_invariants().unwrap();
        }
    }

    #[test]
    fn quiescent_read_completes_fast_and_returns_latest() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(9), &mut fx);
        settle(&mut ps, fx, ProcessId::new(0));
        let mut fx = Effects::new();
        ps[2].on_invoke(OpId::new(1), Operation::Read, &mut fx);
        let done = settle(&mut ps, fx, ProcessId::new(2));
        assert!(done
            .iter()
            .any(|(id, o)| *id == OpId::new(1) && *o == OpOutcome::ReadValue(9)));
        for p in &ps {
            p.check_local_invariants().unwrap();
        }
    }

    #[test]
    fn fast_rule_fires_on_a_uniform_direct_quorum_only() {
        // n = 5, quorum = 3. The reader's own pair is stale (0); two
        // direct acks at ts 1 are not enough with the reader at 0 —
        // uniformity is per-timestamp, never mixed.
        let n = 5;
        let mut ps: Vec<OhRamProcess<u64>> = (0..n)
            .map(|i| OhRamProcess::new(ProcessId::new(i), cfg(n), ProcessId::new(0), 0u64))
            .collect();
        let mut fx = Effects::new();
        ps[4].on_invoke(OpId::new(0), Operation::Read, &mut fx);
        fx.drain_sends().for_each(drop);
        let mut fx = Effects::new();
        ps[4].on_message(
            ProcessId::new(0),
            OhRamMsg::ReadAck {
                rid: 1,
                ts: 1,
                value: 5,
            },
            &mut fx,
        );
        assert_eq!(fx.drain_completions().count(), 0, "2-of-3 at ts 1");
        let mut fx = Effects::new();
        ps[4].on_message(
            ProcessId::new(1),
            OhRamMsg::ReadAck {
                rid: 1,
                ts: 1,
                value: 5,
            },
            &mut fx,
        );
        assert_eq!(
            fx.drain_completions().count(),
            0,
            "reader's own stale ack never counts toward the ts-1 quorum"
        );
        let mut fx = Effects::new();
        ps[4].on_message(
            ProcessId::new(2),
            OhRamMsg::ReadAck {
                rid: 1,
                ts: 1,
                value: 5,
            },
            &mut fx,
        );
        let done: Vec<_> = fx.drain_completions().collect();
        assert_eq!(
            done,
            vec![(OpId::new(0), OpOutcome::ReadValue(5))],
            "third distinct ack at ts 1 completes the fast rule"
        );
    }

    #[test]
    fn relay_rule_returns_the_minimum_over_the_ack_quorum() {
        let n = 3;
        let mut ps = procs(n);
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(0), Operation::Read, &mut fx);
        fx.drain_sends().for_each(drop);
        // Starve the fast rule (no direct acks), feed relay acks with
        // mixed timestamps: the minimum must win.
        let mut fx = Effects::new();
        ps[1].on_message(
            ProcessId::new(0),
            OhRamMsg::RelayAck {
                rid: 1,
                ts: 4,
                value: 44,
            },
            &mut fx,
        );
        assert_eq!(fx.drain_completions().count(), 0);
        let mut fx = Effects::new();
        ps[1].on_message(
            ProcessId::new(2),
            OhRamMsg::RelayAck {
                rid: 1,
                ts: 2,
                value: 22,
            },
            &mut fx,
        );
        let done: Vec<_> = fx.drain_completions().collect();
        assert_eq!(done, vec![(OpId::new(0), OpOutcome::ReadValue(22))]);
        // The reader still absorbed the larger pair for future quorums.
        assert_eq!(ps[1].local_pair(), (4, &44));
    }

    #[test]
    fn servers_relay_and_ack_after_a_relay_quorum() {
        let mut ps = procs(3);
        // p2 receives p1's Read: it must answer directly AND relay.
        let mut fx = Effects::new();
        ps[2].on_message(ProcessId::new(1), OhRamMsg::Read { rid: 1 }, &mut fx);
        let sends: Vec<_> = fx.drain_sends().collect();
        let direct = sends
            .iter()
            .filter(|(to, m)| *to == ProcessId::new(1) && matches!(m, OhRamMsg::ReadAck { .. }))
            .count();
        let relays = sends
            .iter()
            .filter(|(_, m)| matches!(m, OhRamMsg::Relay { .. }))
            .count();
        assert_eq!((direct, relays), (1, 2));
        // One more relay (its own already counts) completes p2's quorum.
        let mut fx = Effects::new();
        ps[2].on_message(
            ProcessId::new(0),
            OhRamMsg::Relay {
                reader: 1,
                rid: 1,
                ts: 3,
                value: 33,
            },
            &mut fx,
        );
        let sends: Vec<_> = fx.drain_sends().collect();
        assert!(
            sends.iter().any(|(to, m)| *to == ProcessId::new(1)
                && matches!(
                    m,
                    OhRamMsg::RelayAck {
                        rid: 1,
                        ts: 3,
                        value: 33
                    }
                )),
            "relay ack carries the relay-updated pair: {sends:?}"
        );
    }

    #[test]
    fn no_relay_ablation_returns_an_unconfirmed_maximum() {
        let n = 3;
        let mut ps: Vec<OhRamProcess<u64>> = (0..n)
            .map(|i| {
                OhRamProcess::with_no_relay(ProcessId::new(i), cfg(n), ProcessId::new(0), 0u64)
            })
            .collect();
        // Server p0 holds an in-flight write's pair no quorum has.
        ps[0].absorb_write(1, 11);
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(0), Operation::Read, &mut fx);
        let sends: Vec<_> = fx.drain_sends().collect();
        assert!(
            sends
                .iter()
                .all(|(_, m)| matches!(m, OhRamMsg::Read { .. })),
            "the ablation never relays: {sends:?}"
        );
        let mut fx = Effects::new();
        ps[1].on_message(
            ProcessId::new(0),
            OhRamMsg::ReadAck {
                rid: 1,
                ts: 1,
                value: 11,
            },
            &mut fx,
        );
        let done: Vec<_> = fx.drain_completions().collect();
        assert_eq!(
            done,
            vec![(OpId::new(0), OpOutcome::ReadValue(11))],
            "self(0) + p0(1) is a quorum; max wins without uniformity"
        );
        assert_eq!(ps[1].local_pair(), (0, &0), "no adopt-on-return either");
    }

    #[test]
    fn recovery_snapshot_pads_to_the_adopted_pair() {
        let mut ps = procs(3);
        ps[1].absorb_write(1, 11);
        assert_eq!(ps[1].recovery_snapshot().unwrap(), vec![0, 11]);
        // A relay pushes the pair ahead of the dense history: the
        // snapshot's length follows the pair, its tail the pair's value.
        ps[1].absorb(3, 33);
        assert_eq!(ps[1].recovery_snapshot().unwrap(), vec![0, 11, 33, 33]);
    }

    #[test]
    fn install_and_rejoin_meet_at_the_barrier() {
        let mut ps = procs(3);
        let snap = vec![0u64, 5, 6];
        ps[2].install_recovery(&snap);
        assert_eq!(ps[2].local_pair(), (2, &6));
        assert_eq!(ps[2].history, snap);
        ps[2].check_local_invariants().unwrap();
        // A live peer with a pending read resolves it at the barrier.
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(7), Operation::Read, &mut fx);
        let mut fx = Effects::new();
        ps[1].apply_rejoin(ProcessId::new(2), &snap, &mut fx);
        let done: Vec<_> = fx.drain_completions().collect();
        assert_eq!(done, vec![(OpId::new(7), OpOutcome::ReadValue(6))]);
        assert_eq!(ps[1].local_pair(), (2, &6));
        // The writer resumes strictly above the barrier.
        ps[0].apply_rejoin(ProcessId::new(2), &snap, &mut Effects::new());
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(8), Operation::Write(9), &mut fx);
        assert!(fx
            .drain_sends()
            .all(|(_, m)| matches!(m, OhRamMsg::Write { seq: 3, value: 9 })));
    }

    #[test]
    fn message_costs_account_tag_and_fields() {
        let m = OhRamMsg::ReadAck {
            rid: 1,
            ts: 7,
            value: 1u64,
        };
        // tag(3) + rid(1) + ts(3) control bits; 64 data bits.
        assert_eq!(m.cost().control_bits, 3 + 1 + 3);
        assert_eq!(m.cost().data_bits, 64);
        let m = OhRamMsg::<u64>::Read { rid: 2 };
        assert_eq!(m.cost().control_bits, 3 + 2);
        assert_eq!(m.cost().data_bits, 0);
    }

    #[test]
    fn every_variant_roundtrips_the_codec() {
        let msgs: Vec<OhRamMsg<u64>> = vec![
            OhRamMsg::Write { seq: 3, value: 7 },
            OhRamMsg::WriteAck { seq: 3 },
            OhRamMsg::Read { rid: 9 },
            OhRamMsg::ReadAck {
                rid: 9,
                ts: 3,
                value: 7,
            },
            OhRamMsg::Relay {
                reader: 2,
                rid: 9,
                ts: 3,
                value: 7,
            },
            OhRamMsg::RelayAck {
                rid: 9,
                ts: 3,
                value: 7,
            },
        ];
        for m in &msgs {
            let mut w = BitWriter::new();
            m.encode_into(&mut w).unwrap();
            assert_eq!(w.bit_len(), m.encoded_bits(), "{}", m.kind());
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(&OhRamMsg::<u64>::decode(&mut r).unwrap(), m);
            assert_eq!(r.bits_read(), m.encoded_bits(), "{}", m.kind());
        }
    }
}
