//! Heterogeneous deployments: the paper's SWMR protocol, the MWMR ABD
//! automaton, and the Oh-RAM fast-read automaton side by side in **one**
//! sharded backend.
//!
//! The execution substrates instantiate one automaton type per deployment
//! (`make(reg, id) -> A`), so a `RegisterSpace` mixing register modes needs
//! a message type that can describe all of them on one link. [`MixedMsg`]
//! is that type: a variable-length wire discriminant in front of the inner
//! protocol's own encoding, and [`MixedProcess`] the matching per-register
//! automaton (each register is still purely one protocol — the mix is
//! across registers, never within one).
//!
//! The discriminant is honest overhead: a heterogeneous deployment's
//! messages are no longer self-evidently one protocol, so the frame's
//! decoder must be told. The prefix code keeps the paper's protocol
//! cheapest — `0` = SWMR (one bit), `10` = MWMR, `11` = Oh-RAM (two bits
//! each); [`MixedMsg::cost`] accounts the prefix as *control* bits. A
//! pure-two-bit deployment should keep using [`TwoBitMsg`] directly, which
//! is why the bench's headline rows do.

use twobit_core::{TwoBitMsg, TwoBitProcess};
use twobit_proto::bits::{BitReader, BitWriter, WireError};
use twobit_proto::{
    Automaton, Effects, MessageCost, OpId, Operation, Payload, ProcessId, RegisterMode,
    SystemConfig, WireMessage,
};

use crate::mwmr::{MwmrMsg, MwmrProcess};
use crate::ohram::{OhRamMsg, OhRamProcess};

/// A message of any hosted protocol, discriminated by a wire prefix code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MixedMsg<V> {
    /// A message of the paper's two-bit SWMR protocol.
    Swmr(TwoBitMsg<V>),
    /// A message of the MWMR ABD protocol.
    Mwmr(MwmrMsg<V>),
    /// A message of the Oh-RAM fast-read protocol.
    OhRam(OhRamMsg<V>),
}

impl<V: Payload> MixedMsg<V> {
    /// Length of this variant's wire discriminant: `0` = SWMR keeps the
    /// paper's protocol one bit; `10` = MWMR and `11` = Oh-RAM pay two.
    fn mode_bits(&self) -> u64 {
        match self {
            MixedMsg::Swmr(_) => 1,
            MixedMsg::Mwmr(_) | MixedMsg::OhRam(_) => 2,
        }
    }
}

impl<V: Payload> WireMessage for MixedMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            MixedMsg::Swmr(m) => m.kind(),
            MixedMsg::Mwmr(m) => m.kind(),
            MixedMsg::OhRam(m) => m.kind(),
        }
    }

    /// The inner protocol's cost plus the mode prefix, charged as control
    /// (it is protocol-identifying information).
    fn cost(&self) -> MessageCost {
        let inner = match self {
            MixedMsg::Swmr(m) => m.cost(),
            MixedMsg::Mwmr(m) => m.cost(),
            MixedMsg::OhRam(m) => m.cost(),
        };
        MessageCost::new(self.mode_bits() + inner.control_bits, inner.data_bits)
    }

    fn encoded_bits(&self) -> u64 {
        self.mode_bits()
            + match self {
                MixedMsg::Swmr(m) => m.encoded_bits(),
                MixedMsg::Mwmr(m) => m.encoded_bits(),
                MixedMsg::OhRam(m) => m.encoded_bits(),
            }
    }

    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        match self {
            MixedMsg::Swmr(m) => {
                w.put_bits(0, 1);
                m.encode_into(w)
            }
            MixedMsg::Mwmr(m) => {
                w.put_bits(0b10, 2);
                m.encode_into(w)
            }
            MixedMsg::OhRam(m) => {
                w.put_bits(0b11, 2);
                m.encode_into(w)
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        if r.get_bits(1)? == 0 {
            return Ok(MixedMsg::Swmr(TwoBitMsg::decode(r)?));
        }
        match r.get_bits(1)? {
            0 => Ok(MixedMsg::Mwmr(MwmrMsg::decode(r)?)),
            _ => Ok(MixedMsg::OhRam(OhRamMsg::decode(r)?)),
        }
    }
}

/// One register's process in a heterogeneous deployment: any hosted
/// protocol's automaton, speaking [`MixedMsg`] on the wire.
#[derive(Clone, Debug)]
pub enum MixedProcess<V> {
    /// This register runs the paper's single-writer protocol.
    Swmr(TwoBitProcess<V>),
    /// This register runs the MWMR ABD protocol.
    Mwmr(MwmrProcess<V>),
    /// This register runs the Oh-RAM fast-read protocol.
    OhRam(OhRamProcess<V>),
}

impl<V: Payload> MixedProcess<V> {
    /// A single-writer register process (the paper's protocol) whose
    /// writer is `writer`.
    pub fn swmr(id: ProcessId, cfg: SystemConfig, writer: ProcessId, v0: V) -> Self {
        MixedProcess::Swmr(TwoBitProcess::new(id, cfg, writer, v0))
    }

    /// A multi-writer register process (MWMR ABD).
    pub fn mwmr(id: ProcessId, cfg: SystemConfig, v0: V) -> Self {
        MixedProcess::Mwmr(MwmrProcess::new(id, cfg, v0))
    }

    /// A single-writer Oh-RAM fast-read register process whose writer is
    /// `writer`.
    pub fn ohram(id: ProcessId, cfg: SystemConfig, writer: ProcessId, v0: V) -> Self {
        MixedProcess::OhRam(OhRamProcess::new(id, cfg, writer, v0))
    }

    /// The process matching a register's declared mode — the natural
    /// `make` closure body for a mixed deployment (`writer` is only used
    /// by the single-writer modes).
    pub fn for_mode(
        mode: RegisterMode,
        id: ProcessId,
        cfg: SystemConfig,
        writer: ProcessId,
        v0: V,
    ) -> Self {
        match mode {
            RegisterMode::Swmr => Self::swmr(id, cfg, writer, v0),
            RegisterMode::Mwmr => Self::mwmr(id, cfg, v0),
            RegisterMode::OhRam => Self::ohram(id, cfg, writer, v0),
        }
    }

    /// This register's mode.
    pub fn mode(&self) -> RegisterMode {
        match self {
            MixedProcess::Swmr(_) => RegisterMode::Swmr,
            MixedProcess::Mwmr(_) => RegisterMode::Mwmr,
            MixedProcess::OhRam(_) => RegisterMode::OhRam,
        }
    }
}

/// Re-wraps an inner protocol's effects into the mixed message space.
fn lift<M, V: Payload>(
    mut inner: Effects<M, V>,
    fx: &mut Effects<MixedMsg<V>, V>,
    wrap: impl Fn(M) -> MixedMsg<V>,
) {
    for (to, msg) in inner.drain_sends() {
        fx.send(to, wrap(msg));
    }
    for (op_id, outcome) in inner.drain_completions() {
        fx.complete(op_id, outcome);
    }
}

impl<V: Payload> Automaton for MixedProcess<V> {
    type Value = V;
    type Msg = MixedMsg<V>;

    fn id(&self) -> ProcessId {
        match self {
            MixedProcess::Swmr(p) => p.id(),
            MixedProcess::Mwmr(p) => p.id(),
            MixedProcess::OhRam(p) => p.id(),
        }
    }

    fn config(&self) -> SystemConfig {
        match self {
            MixedProcess::Swmr(p) => p.config(),
            MixedProcess::Mwmr(p) => p.config(),
            MixedProcess::OhRam(p) => p.config(),
        }
    }

    fn on_invoke(&mut self, op_id: OpId, op: Operation<V>, fx: &mut Effects<MixedMsg<V>, V>) {
        match self {
            MixedProcess::Swmr(p) => {
                let mut inner = Effects::new();
                p.on_invoke(op_id, op, &mut inner);
                lift(inner, fx, MixedMsg::Swmr);
            }
            MixedProcess::Mwmr(p) => {
                let mut inner = Effects::new();
                p.on_invoke(op_id, op, &mut inner);
                lift(inner, fx, MixedMsg::Mwmr);
            }
            MixedProcess::OhRam(p) => {
                let mut inner = Effects::new();
                p.on_invoke(op_id, op, &mut inner);
                lift(inner, fx, MixedMsg::OhRam);
            }
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: MixedMsg<V>, fx: &mut Effects<MixedMsg<V>, V>) {
        // A register's peers all run the same protocol, so a mismatched
        // variant can only come from substrate mis-routing; dropping keeps
        // delivery total (mirroring ShardSet's unknown-register policy).
        match (self, msg) {
            (MixedProcess::Swmr(p), MixedMsg::Swmr(m)) => {
                let mut inner = Effects::new();
                p.on_message(from, m, &mut inner);
                lift(inner, fx, MixedMsg::Swmr);
            }
            (MixedProcess::Mwmr(p), MixedMsg::Mwmr(m)) => {
                let mut inner = Effects::new();
                p.on_message(from, m, &mut inner);
                lift(inner, fx, MixedMsg::Mwmr);
            }
            (MixedProcess::OhRam(p), MixedMsg::OhRam(m)) => {
                let mut inner = Effects::new();
                p.on_message(from, m, &mut inner);
                lift(inner, fx, MixedMsg::OhRam);
            }
            (_, msg) => debug_assert!(false, "protocol mismatch: {} message", msg.kind()),
        }
    }

    fn state_bits(&self) -> u64 {
        match self {
            MixedProcess::Swmr(p) => p.state_bits(),
            MixedProcess::Mwmr(p) => p.state_bits(),
            MixedProcess::OhRam(p) => p.state_bits(),
        }
    }

    fn check_local_invariants(&self) -> Result<(), String> {
        match self {
            MixedProcess::Swmr(p) => p.check_local_invariants(),
            MixedProcess::Mwmr(p) => p.check_local_invariants(),
            MixedProcess::OhRam(p) => p.check_local_invariants(),
        }
    }

    fn swmr_writer(&self) -> Option<ProcessId> {
        match self {
            MixedProcess::Swmr(p) => p.swmr_writer(),
            MixedProcess::Mwmr(p) => p.swmr_writer(),
            MixedProcess::OhRam(p) => p.swmr_writer(),
        }
    }

    fn recovery_snapshot(&self) -> Option<Vec<V>> {
        match self {
            MixedProcess::Swmr(p) => p.recovery_snapshot(),
            MixedProcess::Mwmr(p) => p.recovery_snapshot(),
            MixedProcess::OhRam(p) => p.recovery_snapshot(),
        }
    }

    fn install_recovery(&mut self, snapshot: &[V]) {
        match self {
            MixedProcess::Swmr(p) => p.install_recovery(snapshot),
            MixedProcess::Mwmr(p) => p.install_recovery(snapshot),
            MixedProcess::OhRam(p) => p.install_recovery(snapshot),
        }
    }

    fn apply_rejoin(
        &mut self,
        rejoining: ProcessId,
        snapshot: &[V],
        fx: &mut Effects<MixedMsg<V>, V>,
    ) {
        match self {
            MixedProcess::Swmr(p) => {
                let mut inner = Effects::new();
                p.apply_rejoin(rejoining, snapshot, &mut inner);
                lift(inner, fx, MixedMsg::Swmr);
            }
            MixedProcess::Mwmr(p) => {
                let mut inner = Effects::new();
                p.apply_rejoin(rejoining, snapshot, &mut inner);
                lift(inner, fx, MixedMsg::Mwmr);
            }
            MixedProcess::OhRam(p) => {
                let mut inner = Effects::new();
                p.apply_rejoin(rejoining, snapshot, &mut inner);
                lift(inner, fx, MixedMsg::OhRam);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mwmr::Timestamp;
    use twobit_core::Parity;

    fn cfg() -> SystemConfig {
        SystemConfig::max_resilience(3)
    }

    fn roundtrip(msg: &MixedMsg<u64>) {
        let mut w = BitWriter::new();
        msg.encode_into(&mut w).unwrap();
        assert_eq!(w.bit_len(), msg.encoded_bits());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(&MixedMsg::<u64>::decode(&mut r).unwrap(), msg);
        assert_eq!(r.bits_read(), msg.encoded_bits());
    }

    #[test]
    fn mixed_messages_roundtrip_with_prefix_discriminants() {
        let swmr = MixedMsg::Swmr(TwoBitMsg::Write(Parity::Odd, 7u64));
        let mwmr = MixedMsg::Mwmr(MwmrMsg::Update {
            rid: 3,
            ts: Timestamp { num: 5, pid: 1 },
            value: 9u64,
        });
        let ohram = MixedMsg::OhRam(OhRamMsg::ReadAck {
            rid: 3,
            ts: 5,
            value: 9u64,
        });
        for m in [&swmr, &mwmr, &ohram] {
            roundtrip(m);
        }
        // The paper's protocol keeps the one-bit prefix; the competitors
        // pay two — in the encoding and in the control-bit accounting.
        let inner = TwoBitMsg::Write(Parity::Odd, 7u64);
        assert_eq!(swmr.encoded_bits(), 1 + inner.encoded_bits());
        assert_eq!(swmr.cost().control_bits, 1 + inner.cost().control_bits);
        assert_eq!(swmr.cost().data_bits, inner.cost().data_bits);
        let inner = OhRamMsg::ReadAck {
            rid: 3,
            ts: 5,
            value: 9u64,
        };
        assert_eq!(ohram.encoded_bits(), 2 + inner.encoded_bits());
        assert_eq!(ohram.cost().control_bits, 2 + inner.cost().control_bits);
        let inner = MwmrMsg::Update {
            rid: 3,
            ts: Timestamp { num: 5, pid: 1 },
            value: 9u64,
        };
        assert_eq!(mwmr.encoded_bits(), 2 + inner.encoded_bits());
        assert_eq!(mwmr.cost().control_bits, 2 + inner.cost().control_bits);
    }

    #[test]
    fn for_mode_builds_the_matching_protocol() {
        let c = cfg();
        for mode in [RegisterMode::Swmr, RegisterMode::Mwmr, RegisterMode::OhRam] {
            let p = MixedProcess::for_mode(mode, ProcessId::new(1), c, ProcessId::new(0), 0u64);
            assert_eq!(p.mode(), mode);
            assert_eq!(p.id(), ProcessId::new(1));
            assert_eq!(p.config(), c);
            assert!(p.state_bits() > 0);
            p.check_local_invariants().unwrap();
        }
    }

    #[test]
    fn effects_are_lifted_into_the_mixed_message_space() {
        let c = cfg();
        let mut p = MixedProcess::mwmr(ProcessId::new(2), c, 0u64);
        let mut fx = Effects::new();
        p.on_invoke(OpId::new(0), Operation::Write(5), &mut fx);
        let sends: Vec<_> = fx.drain_sends().collect();
        assert_eq!(sends.len(), 2, "query broadcast to both peers");
        for (_, m) in &sends {
            assert!(matches!(m, MixedMsg::Mwmr(MwmrMsg::Query { .. })));
        }
        let mut p = MixedProcess::ohram(ProcessId::new(2), c, ProcessId::new(0), 0u64);
        let mut fx = Effects::new();
        p.on_invoke(OpId::new(1), Operation::Read, &mut fx);
        assert!(
            fx.drain_sends()
                .all(|(_, m)| matches!(m, MixedMsg::OhRam(_))),
            "Oh-RAM effects come back wrapped"
        );
    }

    #[test]
    fn recovery_hooks_forward_to_the_inner_automaton() {
        let c = cfg();
        let p = MixedProcess::ohram(ProcessId::new(1), c, ProcessId::new(0), 0u64);
        assert_eq!(p.swmr_writer(), Some(ProcessId::new(0)));
        assert_eq!(p.recovery_snapshot(), Some(vec![0u64]));
        let mut p = MixedProcess::swmr(ProcessId::new(1), c, ProcessId::new(0), 0u64);
        p.install_recovery(&[0u64, 4]);
        assert_eq!(p.recovery_snapshot(), Some(vec![0u64, 4]));
        let mut q = MixedProcess::swmr(ProcessId::new(2), c, ProcessId::new(0), 0u64);
        q.apply_rejoin(ProcessId::new(1), &[0u64, 4], &mut Effects::new());
        assert_eq!(q.recovery_snapshot(), Some(vec![0u64, 4]));
    }

    #[test]
    fn mismatched_variant_is_dropped_not_propagated() {
        let c = cfg();
        let mut p = MixedProcess::swmr(ProcessId::new(1), c, ProcessId::new(0), 0u64);
        let mut fx = Effects::new();
        // debug_assert fires under cfg(debug_assertions); release-mode
        // semantics (what the substrates rely on) is a silent drop.
        if cfg!(debug_assertions) {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut fx2 = Effects::new();
                p.on_message(
                    ProcessId::new(0),
                    MixedMsg::Mwmr(MwmrMsg::Query { rid: 1 }),
                    &mut fx2,
                );
            }));
            assert!(r.is_err(), "debug builds surface the mis-route loudly");
        } else {
            p.on_message(
                ProcessId::new(0),
                MixedMsg::Mwmr(MwmrMsg::Query { rid: 1 }),
                &mut fx,
            );
            assert!(fx.is_empty());
        }
    }
}
