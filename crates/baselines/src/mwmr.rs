//! Multi-writer multi-reader ABD (the standard generalization, cf. Lynch &
//! Shvartsman 1997): timestamps are pairs ⟨counter, process-id⟩ ordered
//! lexicographically; **both** operations are two quorum rounds:
//!
//! * **write(v)**: query a quorum for the highest timestamp, pick
//!   ⟨max+1, own id⟩, broadcast the update, wait for a quorum of acks (4Δ);
//! * **read()**: query a quorum, pick the highest ⟨ts, v⟩, write it back,
//!   wait for a quorum of acks, return `v` (4Δ).
//!
//! Not part of Table 1 — the paper is SWMR — but included as the natural
//! extension and as a workload for the general Wing–Gong checker (the
//! specialized SWMR checker does not apply to multi-writer histories).

use serde::{Deserialize, Serialize};
use twobit_proto::bits::{gamma_bits, BitReader, BitWriter, WireError};
use twobit_proto::payload::bits_for;
use twobit_proto::{
    Automaton, Effects, MessageCost, OpId, Operation, Payload, ProcessId, SystemConfig, WireMessage,
};

/// A multi-writer timestamp: ⟨counter, process-id⟩, compared
/// lexicographically (derive order does exactly that).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp {
    /// The logical counter.
    pub num: u64,
    /// Tie-breaking writer id.
    pub pid: u32,
}

impl Timestamp {
    /// The successor timestamp owned by `pid`.
    pub fn next_for(self, pid: ProcessId) -> Timestamp {
        Timestamp {
            num: self.num + 1,
            pid: pid.index() as u32,
        }
    }

    fn bits(&self) -> u64 {
        bits_for(self.num) + bits_for(u64::from(self.pid))
    }

    fn encoded_bits(&self) -> u64 {
        gamma_bits(self.num + 1) + gamma_bits(u64::from(self.pid) + 1)
    }

    fn encode_into(&self, w: &mut BitWriter) {
        w.put_gamma(self.num + 1);
        w.put_gamma(u64::from(self.pid) + 1);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let num = r.get_gamma()? - 1;
        let pid = r.get_gamma()? - 1;
        let pid = u32::try_from(pid).map_err(|_| WireError::Overflow)?;
        Ok(Timestamp { num, pid })
    }
}

/// Messages of the MWMR register. Four wire types.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MwmrMsg<V> {
    /// Phase-1 query (used by both reads and writes).
    Query {
        /// Request identifier.
        rid: u64,
    },
    /// Answer to a query.
    QueryReply {
        /// Echoed request identifier.
        rid: u64,
        /// Responder's timestamp.
        ts: Timestamp,
        /// Responder's value.
        value: V,
    },
    /// Phase-2 update (a write's new pair, or a read's write-back).
    Update {
        /// Request identifier.
        rid: u64,
        /// Timestamp of the pair.
        ts: Timestamp,
        /// The value.
        value: V,
    },
    /// Acknowledges an update.
    UpdateAck {
        /// Echoed request identifier.
        rid: u64,
    },
}

const TAG_BITS: u64 = 2;

impl<V: Payload> WireMessage for MwmrMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            MwmrMsg::Query { .. } => "MWMR_QUERY",
            MwmrMsg::QueryReply { .. } => "MWMR_QUERY_REPLY",
            MwmrMsg::Update { .. } => "MWMR_UPDATE",
            MwmrMsg::UpdateAck { .. } => "MWMR_UPDATE_ACK",
        }
    }

    fn cost(&self) -> MessageCost {
        match self {
            MwmrMsg::Query { rid } => MessageCost::new(TAG_BITS + bits_for(*rid), 0),
            MwmrMsg::QueryReply { rid, ts, value } => {
                MessageCost::new(TAG_BITS + bits_for(*rid) + ts.bits(), value.data_bits())
            }
            MwmrMsg::Update { rid, ts, value } => {
                MessageCost::new(TAG_BITS + bits_for(*rid) + ts.bits(), value.data_bits())
            }
            MwmrMsg::UpdateAck { rid } => MessageCost::new(TAG_BITS + bits_for(*rid), 0),
        }
    }

    /// Wire size: 2-bit tag, gamma-coded request id, gamma-coded timestamp
    /// pair where present, then the value (gamma ≈ twice the modeled bare
    /// widths — see the ABD codec notes).
    fn encoded_bits(&self) -> u64 {
        TAG_BITS
            + match self {
                MwmrMsg::Query { rid } => gamma_bits(rid + 1),
                MwmrMsg::QueryReply { rid, ts, value } | MwmrMsg::Update { rid, ts, value } => {
                    gamma_bits(rid + 1) + ts.encoded_bits() + value.encoded_bits()
                }
                MwmrMsg::UpdateAck { rid } => gamma_bits(rid + 1),
            }
    }

    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        match self {
            MwmrMsg::Query { rid } => {
                w.put_bits(0, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                Ok(())
            }
            MwmrMsg::QueryReply { rid, ts, value } => {
                w.put_bits(1, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                ts.encode_into(w);
                value.encode_into(w)
            }
            MwmrMsg::Update { rid, ts, value } => {
                w.put_bits(2, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                ts.encode_into(w);
                value.encode_into(w)
            }
            MwmrMsg::UpdateAck { rid } => {
                w.put_bits(3, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                Ok(())
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        match r.get_bits(TAG_BITS as u32)? {
            0 => Ok(MwmrMsg::Query {
                rid: r.get_gamma()? - 1,
            }),
            1 => Ok(MwmrMsg::QueryReply {
                rid: r.get_gamma()? - 1,
                ts: Timestamp::decode(r)?,
                value: V::decode(r)?,
            }),
            2 => Ok(MwmrMsg::Update {
                rid: r.get_gamma()? - 1,
                ts: Timestamp::decode(r)?,
                value: V::decode(r)?,
            }),
            3 => Ok(MwmrMsg::UpdateAck {
                rid: r.get_gamma()? - 1,
            }),
            _ => unreachable!("two-bit tags are exhaustive"),
        }
    }
}

#[derive(Clone, Debug)]
enum Pending<V> {
    Query {
        op_id: OpId,
        rid: u64,
        replies: usize,
        best: (Timestamp, V),
        /// `Some(v)` for a write (the value to install), `None` for a read.
        writing: Option<V>,
    },
    Update {
        op_id: OpId,
        rid: u64,
        acks: usize,
        /// Value to return if this is a read's write-back.
        read_value: Option<V>,
    },
}

/// One process of the MWMR ABD register. Every process may read and write.
#[derive(Clone, Debug)]
pub struct MwmrProcess<V> {
    id: ProcessId,
    cfg: SystemConfig,
    ts: Timestamp,
    value: V,
    rid_counter: u64,
    pending: Option<Pending<V>>,
    /// Negative-control fault: acknowledge `Update`s without absorbing
    /// their pair (see [`MwmrProcess::with_stale_acks`]).
    stale_acks: bool,
}

impl<V: Payload> MwmrProcess<V> {
    /// Creates process `id` with initial register value `v0`.
    pub fn new(id: ProcessId, cfg: SystemConfig, v0: V) -> Self {
        assert!(id.index() < cfg.n(), "process id out of range");
        MwmrProcess {
            id,
            cfg,
            ts: Timestamp::default(),
            value: v0,
            rid_counter: 0,
            pending: None,
            stale_acks: false,
        }
    }

    /// A deliberately **broken** variant for checker negative controls:
    /// the process acknowledges `Update` messages *without absorbing* the
    /// carried `(timestamp, value)` pair. A writer still collects a quorum
    /// of acks, but the acked pair was never installed — a later read
    /// whose query quorum happens to meet only stale processes returns the
    /// overwritten value. This is exactly the write-back obligation the
    /// ABD correctness argument rests on; the model checker must find the
    /// schedule that exposes dropping it.
    pub fn with_stale_acks(id: ProcessId, cfg: SystemConfig, v0: V) -> Self {
        MwmrProcess {
            stale_acks: true,
            ..Self::new(id, cfg, v0)
        }
    }

    /// Current `(timestamp, value)` pair.
    pub fn local_pair(&self) -> (Timestamp, &V) {
        (self.ts, &self.value)
    }

    fn absorb(&mut self, ts: Timestamp, value: V) {
        if ts > self.ts {
            self.ts = ts;
            self.value = value;
        }
    }

    fn broadcast(&self, msg: &MwmrMsg<V>, fx: &mut Effects<MwmrMsg<V>, V>) {
        for j in self.cfg.peers(self.id).collect::<Vec<_>>() {
            fx.send(j, msg.clone());
        }
    }

    fn next_rid(&mut self) -> u64 {
        self.rid_counter += 1;
        self.rid_counter
    }

    fn check_quorum(&mut self, fx: &mut Effects<MwmrMsg<V>, V>) {
        let quorum = self.cfg.quorum();
        match self.pending.take() {
            Some(Pending::Query {
                op_id,
                rid,
                replies,
                best,
                writing,
            }) => {
                if replies < quorum {
                    self.pending = Some(Pending::Query {
                        op_id,
                        rid,
                        replies,
                        best,
                        writing,
                    });
                    return;
                }
                let (ts, value, read_value) = match writing {
                    Some(v) => (best.0.next_for(self.id), v, None),
                    None => (best.0, best.1.clone(), Some(best.1)),
                };
                self.absorb(ts, value.clone());
                let rid2 = self.next_rid();
                self.broadcast(
                    &MwmrMsg::Update {
                        rid: rid2,
                        ts,
                        value,
                    },
                    fx,
                );
                self.pending = Some(Pending::Update {
                    op_id,
                    rid: rid2,
                    acks: 1, // ourselves
                    read_value,
                });
                self.check_quorum(fx);
            }
            Some(Pending::Update {
                op_id,
                rid,
                acks,
                read_value,
            }) => {
                if acks >= quorum {
                    match read_value {
                        Some(v) => fx.complete_read(op_id, v),
                        None => fx.complete_write(op_id),
                    }
                } else {
                    self.pending = Some(Pending::Update {
                        op_id,
                        rid,
                        acks,
                        read_value,
                    });
                }
            }
            None => {}
        }
    }
}

impl<V: Payload> Automaton for MwmrProcess<V> {
    type Value = V;
    type Msg = MwmrMsg<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// # Panics
    ///
    /// Panics if an operation is invoked while another is pending.
    fn on_invoke(&mut self, op_id: OpId, op: Operation<V>, fx: &mut Effects<MwmrMsg<V>, V>) {
        assert!(
            self.pending.is_none(),
            "{}: operation already pending",
            self.id
        );
        let rid = self.next_rid();
        let writing = match op {
            Operation::Write(v) => Some(v),
            Operation::Read => None,
        };
        self.broadcast(&MwmrMsg::Query { rid }, fx);
        self.pending = Some(Pending::Query {
            op_id,
            rid,
            replies: 1, // our own pair
            best: (self.ts, self.value.clone()),
            writing,
        });
        self.check_quorum(fx);
    }

    fn on_message(&mut self, from: ProcessId, msg: MwmrMsg<V>, fx: &mut Effects<MwmrMsg<V>, V>) {
        match msg {
            MwmrMsg::Query { rid } => {
                fx.send(
                    from,
                    MwmrMsg::QueryReply {
                        rid,
                        ts: self.ts,
                        value: self.value.clone(),
                    },
                );
            }
            MwmrMsg::QueryReply { rid, ts, value } => {
                if let Some(Pending::Query {
                    rid: want,
                    replies,
                    best,
                    ..
                }) = self.pending.as_mut()
                {
                    if rid == *want {
                        *replies += 1;
                        if ts > best.0 {
                            *best = (ts, value);
                        }
                        self.check_quorum(fx);
                    }
                }
            }
            MwmrMsg::Update { rid, ts, value } => {
                if !self.stale_acks {
                    self.absorb(ts, value);
                }
                fx.send(from, MwmrMsg::UpdateAck { rid });
            }
            MwmrMsg::UpdateAck { rid } => {
                if let Some(Pending::Update {
                    rid: want, acks, ..
                }) = self.pending.as_mut()
                {
                    if rid == *want {
                        *acks += 1;
                        self.check_quorum(fx);
                    }
                }
            }
        }
    }

    fn state_bits(&self) -> u64 {
        self.ts.bits() + self.value.data_bits() + bits_for(self.rid_counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::max_resilience(n)
    }

    fn procs(n: usize) -> Vec<MwmrProcess<u64>> {
        (0..n)
            .map(|i| MwmrProcess::new(ProcessId::new(i), cfg(n), 0u64))
            .collect()
    }

    /// Synchronously runs all traffic to quiescence, FIFO.
    fn settle(ps: &mut [MwmrProcess<u64>], seed: Vec<(ProcessId, ProcessId, MwmrMsg<u64>)>) {
        let mut q = std::collections::VecDeque::from(seed);
        while let Some((from, to, m)) = q.pop_front() {
            let mut fx = Effects::new();
            ps[to.index()].on_message(from, m, &mut fx);
            for (next, m2) in fx.drain_sends() {
                q.push_back((to, next, m2));
            }
        }
    }

    #[test]
    fn timestamp_order_is_lexicographic() {
        let a = Timestamp { num: 1, pid: 5 };
        let b = Timestamp { num: 2, pid: 0 };
        let c = Timestamp { num: 2, pid: 3 };
        assert!(a < b && b < c);
        assert_eq!(a.next_for(ProcessId::new(7)), Timestamp { num: 2, pid: 7 });
    }

    #[test]
    fn any_process_may_write() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[2].on_invoke(OpId::new(0), Operation::Write(9), &mut fx);
        let seed: Vec<_> = fx
            .drain_sends()
            .map(|(to, m)| (ProcessId::new(2), to, m))
            .collect();
        assert_eq!(seed.len(), 2); // query broadcast
        settle(&mut ps, seed);
        // After settling, everyone has ts ⟨1, 2⟩ and value 9.
        for p in &ps {
            assert_eq!(p.local_pair(), (Timestamp { num: 1, pid: 2 }, &9));
        }
    }

    #[test]
    fn write_ts_exceeds_all_quorum_ts() {
        let mut ps = procs(3);
        // Seed p1 with ts ⟨5, 1⟩.
        ps[1].ts = Timestamp { num: 5, pid: 1 };
        ps[1].value = 55;
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(7), &mut fx);
        let seed: Vec<_> = fx
            .drain_sends()
            .map(|(to, m)| (ProcessId::new(0), to, m))
            .collect();
        settle(&mut ps, seed);
        assert_eq!(ps[0].local_pair(), (Timestamp { num: 6, pid: 0 }, &7));
    }

    #[test]
    fn read_adopts_and_writes_back_max() {
        let mut ps = procs(3);
        // Seed the fresh pair on a quorum (p0, p2) — a single seeded
        // process could legitimately be missed by the read quorum.
        for i in [0usize, 2] {
            ps[i].ts = Timestamp { num: 3, pid: 0 };
            ps[i].value = 33;
        }
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(0), Operation::Read, &mut fx);
        let seed: Vec<_> = fx
            .drain_sends()
            .map(|(to, m)| (ProcessId::new(1), to, m))
            .collect();
        settle(&mut ps, seed);
        // The write-back installed the pair at the reader.
        assert_eq!(ps[1].local_pair(), (Timestamp { num: 3, pid: 0 }, &33));
    }

    #[test]
    fn message_costs_account_ts() {
        let m = MwmrMsg::Update {
            rid: 1,
            ts: Timestamp { num: 7, pid: 2 },
            value: 1u64,
        };
        // tag(2) + rid(1) + ts(num:3 + pid:2) = 8
        assert_eq!(m.cost().control_bits, 2 + 1 + 3 + 2);
        assert_eq!(m.cost().data_bits, 64);
    }
}
