//! A deliberately **non-atomic** strawman register, used as a negative
//! control.
//!
//! Writes propagate like ABD writes (broadcast + majority ack), but reads
//! return the local replica *immediately*, with no quorum interaction.
//! This is the natural "obvious" design — and it is wrong: a reader close
//! to the writer can return a new value while a reader whose link is slow
//! later returns the old one (a new/old inversion), and a read can miss a
//! completed write entirely (a stale read). The test suite uses this
//! automaton to demonstrate that the linearizability checker and the
//! simulator actually catch real protocol bugs — the positive results on
//! the real algorithms are meaningful because this negative control fails.

use serde::{Deserialize, Serialize};
use twobit_proto::bits::{gamma_bits, BitReader, BitWriter, WireError};
use twobit_proto::payload::bits_for;
use twobit_proto::{
    Automaton, Effects, MessageCost, OpId, Operation, Payload, ProcessId, SystemConfig, WireMessage,
};

/// Messages of the naive register.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NaiveMsg<V> {
    /// Writer's value announcement.
    Store {
        /// Sequence number.
        seq: u64,
        /// The value.
        value: V,
    },
    /// Acknowledgement of a [`NaiveMsg::Store`].
    StoreAck {
        /// Echoed sequence number.
        seq: u64,
    },
}

impl<V: Payload> WireMessage for NaiveMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            NaiveMsg::Store { .. } => "NAIVE_STORE",
            NaiveMsg::StoreAck { .. } => "NAIVE_STORE_ACK",
        }
    }

    fn cost(&self) -> MessageCost {
        match self {
            NaiveMsg::Store { seq, value } => {
                MessageCost::new(1 + bits_for(*seq), value.data_bits())
            }
            NaiveMsg::StoreAck { seq } => MessageCost::new(1 + bits_for(*seq), 0),
        }
    }

    /// Wire size: 1-bit tag, gamma-coded sequence number, then the value
    /// for stores (gamma ≈ twice the modeled bare width — see the ABD
    /// codec notes).
    fn encoded_bits(&self) -> u64 {
        match self {
            NaiveMsg::Store { seq, value } => 1 + gamma_bits(seq + 1) + value.encoded_bits(),
            NaiveMsg::StoreAck { seq } => 1 + gamma_bits(seq + 1),
        }
    }

    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        match self {
            NaiveMsg::Store { seq, value } => {
                w.put_bit(false);
                w.put_gamma(seq + 1);
                value.encode_into(w)
            }
            NaiveMsg::StoreAck { seq } => {
                w.put_bit(true);
                w.put_gamma(seq + 1);
                Ok(())
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let ack = r.get_bit()?;
        let seq = r.get_gamma()? - 1;
        if ack {
            Ok(NaiveMsg::StoreAck { seq })
        } else {
            Ok(NaiveMsg::Store {
                seq,
                value: V::decode(r)?,
            })
        }
    }
}

/// One process of the naive (broken) register.
#[derive(Clone, Debug)]
pub struct NaiveProcess<V> {
    id: ProcessId,
    cfg: SystemConfig,
    writer: ProcessId,
    seq: u64,
    value: V,
    write_counter: u64,
    pending: Option<(OpId, u64, usize)>,
}

impl<V: Payload> NaiveProcess<V> {
    /// Creates process `id`; `writer` is the unique writer.
    pub fn new(id: ProcessId, cfg: SystemConfig, writer: ProcessId, v0: V) -> Self {
        NaiveProcess {
            id,
            cfg,
            writer,
            seq: 0,
            value: v0,
            write_counter: 0,
            pending: None,
        }
    }
}

impl<V: Payload> Automaton for NaiveProcess<V> {
    type Value = V;
    type Msg = NaiveMsg<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// # Panics
    ///
    /// Panics on writes from a non-writer.
    fn on_invoke(&mut self, op_id: OpId, op: Operation<V>, fx: &mut Effects<NaiveMsg<V>, V>) {
        match op {
            Operation::Write(v) => {
                assert!(self.id == self.writer, "naive register is single-writer");
                self.write_counter += 1;
                let seq = self.write_counter;
                self.seq = seq;
                self.value = v.clone();
                for j in self.cfg.peers(self.id).collect::<Vec<_>>() {
                    fx.send(
                        j,
                        NaiveMsg::Store {
                            seq,
                            value: v.clone(),
                        },
                    );
                }
                if self.cfg.quorum() <= 1 {
                    fx.complete_write(op_id);
                } else {
                    self.pending = Some((op_id, seq, 1));
                }
            }
            // THE BUG: a purely local read — no quorum, no write-back.
            Operation::Read => fx.complete_read(op_id, self.value.clone()),
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: NaiveMsg<V>, fx: &mut Effects<NaiveMsg<V>, V>) {
        match msg {
            NaiveMsg::Store { seq, value } => {
                if seq > self.seq {
                    self.seq = seq;
                    self.value = value;
                }
                fx.send(from, NaiveMsg::StoreAck { seq });
            }
            NaiveMsg::StoreAck { seq } => {
                if let Some((op_id, want, acks)) = self.pending.as_mut() {
                    if seq == *want {
                        *acks += 1;
                        if *acks >= self.cfg.quorum() {
                            let id = *op_id;
                            self.pending = None;
                            fx.complete_write(id);
                        }
                    }
                }
            }
        }
    }

    fn state_bits(&self) -> u64 {
        bits_for(self.seq) + self.value.data_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_reads_are_instant() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut p = NaiveProcess::new(ProcessId::new(1), cfg, ProcessId::new(0), 0u64);
        let mut fx = Effects::new();
        p.on_invoke(OpId::new(0), Operation::Read, &mut fx);
        assert_eq!(fx.completions().len(), 1);
        assert!(fx.sends().is_empty());
    }

    #[test]
    fn writes_wait_for_quorum() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let mut p = NaiveProcess::new(ProcessId::new(0), cfg, ProcessId::new(0), 0u64);
        let mut fx = Effects::new();
        p.on_invoke(OpId::new(0), Operation::Write(5), &mut fx);
        assert!(fx.completions().is_empty());
        assert_eq!(fx.sends().len(), 2);
        let mut fx = Effects::new();
        p.on_message(ProcessId::new(1), NaiveMsg::StoreAck { seq: 1 }, &mut fx);
        assert_eq!(fx.completions().len(), 1);
    }
}
