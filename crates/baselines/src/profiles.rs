//! Cost profiles reproducing the two bounded columns of Table 1.
//!
//! | metric            | bounded ABD \[3\]   | Attiya \[1\]       |
//! |-------------------|---------------------|--------------------|
//! | #msgs write       | O(n²)               | O(n)               |
//! | #msgs read        | O(n²)               | O(n)               |
//! | msg size (bits)   | O(n⁵)               | O(n³)              |
//! | local memory      | O(n⁶)               | O(n⁵)              |
//! | write time        | 12Δ                 | 14Δ                |
//! | read time         | 12Δ                 | 18Δ                |
//!
//! (Values from the paper's Table 1, which cites its refs \[1\] and \[19\].)
//! The phase
//! sequences below realize exactly those latencies (each phase is one 2Δ
//! round trip) and message complexities (an [`PhaseKind::Echo`] phase is
//! Θ(n²)); the per-message padding and modeled memory realize the bit
//! bounds with unit constants. These are **emulations** — see DESIGN.md §5.

use crate::phased::{CostProfile, PhaseKind};

/// Cost profile of the bounded-sequence-number version of ABD'95.
///
/// Write = Value, Echo, then four Sync rounds (6 phases = 12Δ; the Echo
/// round makes it Θ(n²) messages). Read = Query, Value (write-back), Echo,
/// then three Sync rounds (6 phases = 12Δ, Θ(n²)).
pub fn abd_bounded_profile(n: usize) -> CostProfile {
    let n = n as u64;
    CostProfile {
        name: "ABD95-bounded",
        write_phases: vec![
            PhaseKind::Value,
            PhaseKind::Echo,
            PhaseKind::Sync,
            PhaseKind::Sync,
            PhaseKind::Sync,
            PhaseKind::Sync,
        ],
        read_phases: vec![
            PhaseKind::Query,
            PhaseKind::Value,
            PhaseKind::Echo,
            PhaseKind::Sync,
            PhaseKind::Sync,
            PhaseKind::Sync,
        ],
        control_bits_per_msg: n.pow(5),
        modeled_state_bits: n.pow(6),
    }
}

/// Cost profile of H. Attiya's bounded algorithm (J. Algorithms 2000).
///
/// Write = Value then six Sync rounds (7 phases = 14Δ); read = Query,
/// Value (write-back), then seven Sync rounds (9 phases = 18Δ). All rounds
/// are broadcast/ack, so operations are Θ(n) messages.
pub fn attiya_profile(n: usize) -> CostProfile {
    let n = n as u64;
    CostProfile {
        name: "Attiya-bounded",
        write_phases: {
            let mut v = vec![PhaseKind::Value];
            v.extend(std::iter::repeat_n(PhaseKind::Sync, 6));
            v
        },
        read_phases: {
            let mut v = vec![PhaseKind::Query, PhaseKind::Value];
            v.extend(std::iter::repeat_n(PhaseKind::Sync, 7));
            v
        },
        control_bits_per_msg: n.pow(3),
        modeled_state_bits: n.pow(5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_counts_give_table_latencies() {
        for n in [3, 5, 10] {
            let b = abd_bounded_profile(n);
            assert_eq!(b.write_delta(), 12);
            assert_eq!(b.read_delta(), 12);
            let a = attiya_profile(n);
            assert_eq!(a.write_delta(), 14);
            assert_eq!(a.read_delta(), 18);
        }
    }

    #[test]
    fn bit_budgets_scale_polynomially() {
        let b3 = abd_bounded_profile(3);
        let b6 = abd_bounded_profile(6);
        assert_eq!(b6.control_bits_per_msg / b3.control_bits_per_msg, 32); // 2⁵
        assert_eq!(b6.modeled_state_bits / b3.modeled_state_bits, 64); // 2⁶
        let a3 = attiya_profile(3);
        let a6 = attiya_profile(6);
        assert_eq!(a6.control_bits_per_msg / a3.control_bits_per_msg, 8); // 2³
        assert_eq!(a6.modeled_state_bits / a3.modeled_state_bits, 32); // 2⁵
    }

    #[test]
    fn echo_only_in_bounded_abd() {
        let b = abd_bounded_profile(5);
        assert!(b.write_phases.contains(&PhaseKind::Echo));
        assert!(b.read_phases.contains(&PhaseKind::Echo));
        let a = attiya_profile(5);
        assert!(!a.write_phases.contains(&PhaseKind::Echo));
        assert!(!a.read_phases.contains(&PhaseKind::Echo));
    }
}
