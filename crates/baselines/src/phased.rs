//! Phase-structured quorum protocol engine: the machinery behind the
//! **cost-faithful emulations** of the bounded baselines (see DESIGN.md §5).
//!
//! An operation is a fixed sequence of *phases*; each phase is one
//! broadcast/response round (2Δ). Four phase kinds exist:
//!
//! * [`PhaseKind::Value`] — broadcast the current `(seq, value)` pair and
//!   collect `n−t` acks (the data-bearing round; ABD's write round);
//! * [`PhaseKind::Query`] — collect `(seq, value)` pairs from `n−t`
//!   processes and remember the freshest (ABD's read-query round);
//! * [`PhaseKind::Sync`] — an empty synchronization round (`n−t` acks);
//!   stands in for the handshake/label-maintenance rounds of the bounded
//!   timestamp constructions, which is where their extra latency comes from;
//! * [`PhaseKind::Echo`] — a relay round: every receiver re-broadcasts to
//!   everyone, and the originator waits for `n−t` distinct relayers. Costs
//!   `(n−1) + (n−1)²` messages — this is what makes an operation Θ(n²)
//!   messages, matching the bounded-ABD row of Table 1.
//!
//! Data-flow correctness is plain ABD (a `Value` install round, and
//! `Query`+`Value` for reads), so the emulated registers are really
//! linearizable — the test suite checks them with `twobit-lincheck` like any
//! other algorithm. The *costs* (message count, phase count ⇒ Δ-latency,
//! per-message control-bit padding, modeled local memory) are set by a
//! [`CostProfile`] to match the published figures being emulated.

use serde::{Deserialize, Serialize};
use twobit_proto::bits::{gamma_bits, BitReader, BitWriter, WireError};
use twobit_proto::payload::bits_for;
use twobit_proto::{
    Automaton, Effects, MessageCost, OpId, Operation, Payload, ProcessId, SystemConfig, WireMessage,
};

/// One round of a phased operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// Install the operation's `(seq, value)` pair on a quorum.
    Value,
    /// Collect the freshest `(seq, value)` pair from a quorum.
    Query,
    /// Empty synchronization round.
    Sync,
    /// Relay round (Θ(n²) messages).
    Echo,
}

/// The cost shape of an emulated algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostProfile {
    /// Human-readable algorithm name (used in reports).
    pub name: &'static str,
    /// Phase sequence of a write operation.
    pub write_phases: Vec<PhaseKind>,
    /// Phase sequence of a read operation.
    pub read_phases: Vec<PhaseKind>,
    /// Control bits carried by *every* message (the modeled bounded
    /// timestamp / label structure). The real request ids and sequence
    /// numbers of the emulation are folded into this budget (they are far
    /// smaller).
    pub control_bits_per_msg: u64,
    /// Modeled local memory in bits (Table 1 row 4).
    pub modeled_state_bits: u64,
}

impl CostProfile {
    /// Failure-free latency of a write, in units of Δ.
    pub fn write_delta(&self) -> u64 {
        2 * self.write_phases.len() as u64
    }

    /// Failure-free latency of a read, in units of Δ.
    pub fn read_delta(&self) -> u64 {
        2 * self.read_phases.len() as u64
    }
}

/// Messages of the phased engine. The `rid` identifies the (operation,
/// phase) round; `origin` on relays names the round's originator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhasedMsg<V> {
    /// Install round broadcast.
    Value {
        /// Round id.
        rid: u64,
        /// Pair being installed.
        seq: u64,
        /// Value being installed.
        value: V,
    },
    /// Ack of [`PhasedMsg::Value`].
    ValueAck {
        /// Echoed round id.
        rid: u64,
    },
    /// Query round broadcast.
    Query {
        /// Round id.
        rid: u64,
    },
    /// Reply to [`PhasedMsg::Query`].
    QueryReply {
        /// Echoed round id.
        rid: u64,
        /// Responder's sequence number.
        seq: u64,
        /// Responder's value.
        value: V,
    },
    /// Sync round broadcast.
    Sync {
        /// Round id.
        rid: u64,
    },
    /// Ack of [`PhasedMsg::Sync`].
    SyncAck {
        /// Echoed round id.
        rid: u64,
    },
    /// Echo round broadcast.
    EchoReq {
        /// Round id.
        rid: u64,
    },
    /// Relay of an [`PhasedMsg::EchoReq`] — broadcast by every receiver.
    EchoRelay {
        /// Echoed round id.
        rid: u64,
        /// The round's originator.
        origin: ProcessId,
    },
}

impl<V> PhasedMsg<V> {
    /// The round id every variant carries.
    fn rid(&self) -> u64 {
        match self {
            PhasedMsg::Value { rid, .. }
            | PhasedMsg::ValueAck { rid }
            | PhasedMsg::Query { rid }
            | PhasedMsg::QueryReply { rid, .. }
            | PhasedMsg::Sync { rid }
            | PhasedMsg::SyncAck { rid }
            | PhasedMsg::EchoReq { rid }
            | PhasedMsg::EchoRelay { rid, .. } => *rid,
        }
    }
}

/// A phased process does not know its padding at the type level, so the
/// profile's `control_bits_per_msg` is stamped into each message cost by
/// the automaton when sending (wrapping messages in [`Padded`]); the raw
/// `WireMessage` impl reports the *unpadded* cost and is only used
/// internally.
impl<V: Payload> WireMessage for PhasedMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            PhasedMsg::Value { .. } => "EMU_VALUE",
            PhasedMsg::ValueAck { .. } => "EMU_VALUE_ACK",
            PhasedMsg::Query { .. } => "EMU_QUERY",
            PhasedMsg::QueryReply { .. } => "EMU_QUERY_REPLY",
            PhasedMsg::Sync { .. } => "EMU_SYNC",
            PhasedMsg::SyncAck { .. } => "EMU_SYNC_ACK",
            PhasedMsg::EchoReq { .. } => "EMU_ECHO_REQ",
            PhasedMsg::EchoRelay { .. } => "EMU_ECHO_RELAY",
        }
    }

    fn cost(&self) -> MessageCost {
        // Unpadded baseline cost; `Padded` (below) adds the profile budget.
        match self {
            PhasedMsg::Value { seq, value, .. } | PhasedMsg::QueryReply { seq, value, .. } => {
                MessageCost::new(3 + bits_for(*seq), value.data_bits())
            }
            _ => MessageCost::new(3, 0),
        }
    }

    /// Wire size: 3-bit tag, gamma-coded round id, then the variant's
    /// fields (gamma ≈ twice the modeled bare widths — see the ABD codec
    /// notes).
    fn encoded_bits(&self) -> u64 {
        3 + gamma_bits(self.rid() + 1)
            + match self {
                PhasedMsg::Value { seq, value, .. } | PhasedMsg::QueryReply { seq, value, .. } => {
                    gamma_bits(seq + 1) + value.encoded_bits()
                }
                PhasedMsg::EchoRelay { origin, .. } => gamma_bits(origin.index() as u64 + 1),
                _ => 0,
            }
    }

    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        let tag = match self {
            PhasedMsg::Value { .. } => 0,
            PhasedMsg::ValueAck { .. } => 1,
            PhasedMsg::Query { .. } => 2,
            PhasedMsg::QueryReply { .. } => 3,
            PhasedMsg::Sync { .. } => 4,
            PhasedMsg::SyncAck { .. } => 5,
            PhasedMsg::EchoReq { .. } => 6,
            PhasedMsg::EchoRelay { .. } => 7,
        };
        w.put_bits(tag, 3);
        w.put_gamma(self.rid() + 1);
        match self {
            PhasedMsg::Value { seq, value, .. } | PhasedMsg::QueryReply { seq, value, .. } => {
                w.put_gamma(seq + 1);
                value.encode_into(w)?;
            }
            PhasedMsg::EchoRelay { origin, .. } => {
                w.put_gamma(origin.index() as u64 + 1);
            }
            _ => {}
        }
        Ok(())
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let tag = r.get_bits(3)?;
        let rid = r.get_gamma()? - 1;
        Ok(match tag {
            0 | 3 => {
                let seq = r.get_gamma()? - 1;
                let value = V::decode(r)?;
                if tag == 0 {
                    PhasedMsg::Value { rid, seq, value }
                } else {
                    PhasedMsg::QueryReply { rid, seq, value }
                }
            }
            1 => PhasedMsg::ValueAck { rid },
            2 => PhasedMsg::Query { rid },
            4 => PhasedMsg::Sync { rid },
            5 => PhasedMsg::SyncAck { rid },
            6 => PhasedMsg::EchoReq { rid },
            7 => {
                let origin = r.get_gamma()? - 1;
                let origin = usize::try_from(origin)
                    .ok()
                    .filter(|&p| p <= u32::MAX as usize)
                    .ok_or(WireError::Overflow)?;
                PhasedMsg::EchoRelay {
                    rid,
                    origin: ProcessId::new(origin),
                }
            }
            _ => unreachable!("three-bit tags are exhaustive"),
        })
    }
}

/// A [`PhasedMsg`] stamped with its profile's control padding — this is the
/// actual wire type of the emulated algorithms.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Padded<V> {
    /// The underlying engine message.
    pub inner: PhasedMsg<V>,
    /// Control bits the emulated algorithm would carry on this message.
    pub control_bits: u64,
}

impl<V: Payload> WireMessage for Padded<V> {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn cost(&self) -> MessageCost {
        let base = self.inner.cost();
        // The emulated control structure subsumes the engine's own ids.
        MessageCost::new(self.control_bits.max(base.control_bits), base.data_bits)
    }

    /// Wire size: the engine message plus the modeled padding as *real*
    /// zero bits, so a byte transport carries what the emulated algorithm
    /// would carry — the O(n³)/O(n⁵) control budgets of the bounded
    /// baselines become measurable bytes, not just a number in a struct.
    fn encoded_bits(&self) -> u64 {
        let pad = self.wire_pad_bits();
        self.inner.encoded_bits() + gamma_bits(pad + 1) + pad
    }

    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        self.inner.encode_into(w)?;
        let pad = self.wire_pad_bits();
        w.put_gamma(pad + 1);
        for _ in 0..pad {
            w.put_bit(false);
        }
        Ok(())
    }

    /// Decoding normalizes the stamp to the *effective* control budget
    /// (`max(control_bits, engine cost)`) — the quantity `cost()` reports
    /// either way, so the cost accounting round-trips exactly.
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let inner = PhasedMsg::<V>::decode(r)?;
        let pad = r.get_gamma()? - 1;
        if pad > r.remaining_bits() {
            return Err(WireError::Overflow);
        }
        for _ in 0..pad {
            if r.get_bit()? {
                return Err(WireError::Malformed("non-zero padding in emulated budget"));
            }
        }
        let control_bits = inner.cost().control_bits + pad;
        Ok(Padded {
            inner,
            control_bits,
        })
    }
}

impl<V: Payload> Padded<V> {
    /// Padding bits the wire encoding appends beyond the engine message:
    /// the modeled control budget minus the engine's own control bits.
    fn wire_pad_bits(&self) -> u64 {
        self.control_bits
            .saturating_sub(self.inner.cost().control_bits)
    }
}

#[derive(Clone, Debug)]
struct PendingPhased<V> {
    op_id: OpId,
    phases: Vec<PhaseKind>,
    phase_idx: usize,
    rid: u64,
    acks: usize,
    relayers: Vec<bool>,
    /// Freshest pair seen by the current Query phase.
    best: (u64, V),
    /// `Some(v)`: a write of `v`; `None`: a read.
    writing: Option<V>,
    /// Pair installed by the operation's Value phase (for reads: the
    /// write-back pair, whose value is returned).
    install: (u64, V),
}

/// One process of a phase-structured (emulated) SWMR register.
#[derive(Clone, Debug)]
pub struct PhasedProcess<V> {
    id: ProcessId,
    cfg: SystemConfig,
    writer: ProcessId,
    profile: CostProfile,
    seq: u64,
    value: V,
    write_counter: u64,
    rid_counter: u64,
    pending: Option<PendingPhased<V>>,
}

impl<V: Payload> PhasedProcess<V> {
    /// Creates process `id` with the given cost profile.
    pub fn new(
        id: ProcessId,
        cfg: SystemConfig,
        writer: ProcessId,
        v0: V,
        profile: CostProfile,
    ) -> Self {
        assert!(id.index() < cfg.n(), "process id out of range");
        assert!(writer.index() < cfg.n(), "writer id out of range");
        assert!(
            !profile.write_phases.is_empty() && !profile.read_phases.is_empty(),
            "profiles need at least one phase per operation"
        );
        PhasedProcess {
            id,
            cfg,
            writer,
            profile,
            seq: 0,
            value: v0,
            write_counter: 0,
            rid_counter: 0,
            pending: None,
        }
    }

    /// The profile this process emulates.
    pub fn profile(&self) -> &CostProfile {
        &self.profile
    }

    /// Current local `(seq, value)` pair.
    pub fn local_pair(&self) -> (u64, &V) {
        (self.seq, &self.value)
    }

    fn stamp(&self, inner: PhasedMsg<V>) -> Padded<V> {
        Padded {
            control_bits: self.profile.control_bits_per_msg,
            inner,
        }
    }

    fn absorb(&mut self, seq: u64, value: V) {
        if seq > self.seq {
            self.seq = seq;
            self.value = value;
        }
    }

    fn broadcast(&self, inner: &PhasedMsg<V>, fx: &mut Effects<Padded<V>, V>) {
        for j in self.cfg.peers(self.id).collect::<Vec<_>>() {
            fx.send(j, self.stamp(inner.clone()));
        }
    }

    fn next_rid(&mut self) -> u64 {
        self.rid_counter += 1;
        self.rid_counter
    }

    /// Starts phase `pending.phase_idx`, or completes the operation if all
    /// phases are done.
    fn start_phase(&mut self, fx: &mut Effects<Padded<V>, V>) {
        let Some(mut p) = self.pending.take() else {
            return;
        };
        if p.phase_idx >= p.phases.len() {
            match p.writing {
                Some(_) => fx.complete_write(p.op_id),
                None => fx.complete_read(p.op_id, p.install.1.clone()),
            }
            return;
        }
        let kind = p.phases[p.phase_idx];
        p.rid = self.next_rid();
        p.acks = 1; // ourselves, for every phase kind
        p.relayers = vec![false; self.cfg.n()];
        match kind {
            PhaseKind::Value => {
                // For a write: install the new pair; for a read: write back
                // the best pair found by the preceding Query.
                let (seq, value) = match &p.writing {
                    Some(v) => {
                        self.write_counter += 1;
                        (self.write_counter, v.clone())
                    }
                    None => p.best.clone(),
                };
                p.install = (seq, value.clone());
                self.absorb(seq, value.clone());
                self.broadcast(
                    &PhasedMsg::Value {
                        rid: p.rid,
                        seq,
                        value,
                    },
                    fx,
                );
            }
            PhaseKind::Query => {
                p.best = (self.seq, self.value.clone());
                self.broadcast(&PhasedMsg::Query { rid: p.rid }, fx);
            }
            PhaseKind::Sync => {
                self.broadcast(&PhasedMsg::Sync { rid: p.rid }, fx);
            }
            PhaseKind::Echo => {
                self.broadcast(&PhasedMsg::EchoReq { rid: p.rid }, fx);
            }
        }
        self.pending = Some(p);
        self.check_quorum(fx);
    }

    fn check_quorum(&mut self, fx: &mut Effects<Padded<V>, V>) {
        let quorum = self.cfg.quorum();
        let Some(p) = self.pending.as_mut() else {
            return;
        };
        if p.acks >= quorum {
            let mut p = self.pending.take().expect("checked above");
            p.phase_idx += 1;
            self.pending = Some(p);
            self.start_phase(fx);
        }
    }
}

impl<V: Payload> Automaton for PhasedProcess<V> {
    type Value = V;
    type Msg = Padded<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// # Panics
    ///
    /// Panics if a write is invoked on a non-writer process, or if an
    /// operation is invoked while another is pending.
    fn on_invoke(&mut self, op_id: OpId, op: Operation<V>, fx: &mut Effects<Padded<V>, V>) {
        assert!(
            self.pending.is_none(),
            "{}: operation already pending",
            self.id
        );
        let (phases, writing) = match op {
            Operation::Write(v) => {
                assert!(
                    self.id == self.writer,
                    "{}: write invoked on a non-writer process",
                    self.id
                );
                (self.profile.write_phases.clone(), Some(v))
            }
            Operation::Read => (self.profile.read_phases.clone(), None),
        };
        self.pending = Some(PendingPhased {
            op_id,
            phases,
            phase_idx: 0,
            rid: 0,
            acks: 0,
            relayers: vec![false; self.cfg.n()],
            best: (self.seq, self.value.clone()),
            writing,
            install: (self.seq, self.value.clone()),
        });
        self.start_phase(fx);
    }

    fn on_message(&mut self, from: ProcessId, msg: Padded<V>, fx: &mut Effects<Padded<V>, V>) {
        match msg.inner {
            PhasedMsg::Value { rid, seq, value } => {
                self.absorb(seq, value);
                fx.send(from, self.stamp(PhasedMsg::ValueAck { rid }));
            }
            PhasedMsg::Query { rid } => {
                let reply = PhasedMsg::QueryReply {
                    rid,
                    seq: self.seq,
                    value: self.value.clone(),
                };
                fx.send(from, self.stamp(reply));
            }
            PhasedMsg::Sync { rid } => {
                fx.send(from, self.stamp(PhasedMsg::SyncAck { rid }));
            }
            PhasedMsg::EchoReq { rid } => {
                // Relay to everyone (including back to the originator).
                let relay = PhasedMsg::EchoRelay { rid, origin: from };
                self.broadcast(&relay, fx);
            }
            PhasedMsg::ValueAck { rid } | PhasedMsg::SyncAck { rid } => {
                if let Some(p) = self.pending.as_mut() {
                    if p.rid == rid {
                        p.acks += 1;
                        self.check_quorum(fx);
                    }
                }
            }
            PhasedMsg::QueryReply { rid, seq, value } => {
                if let Some(p) = self.pending.as_mut() {
                    if p.rid == rid {
                        p.acks += 1;
                        if seq > p.best.0 {
                            p.best = (seq, value);
                        }
                        self.check_quorum(fx);
                    }
                }
            }
            PhasedMsg::EchoRelay { rid, origin } => {
                if origin == self.id {
                    if let Some(p) = self.pending.as_mut() {
                        if p.rid == rid && !p.relayers[from.index()] {
                            p.relayers[from.index()] = true;
                            p.acks += 1;
                            self.check_quorum(fx);
                        }
                    }
                }
                // Relays addressed to other originators are pure cost.
            }
        }
    }

    /// Local memory as **modeled** by the emulated algorithm's published
    /// bound (Table 1 row 4) — not the emulation's own (much smaller)
    /// footprint. Marked as modeled wherever reported.
    fn state_bits(&self) -> u64 {
        self.profile.modeled_state_bits
    }

    /// The emulated SWMR baselines all pin write permission to one writer.
    fn swmr_writer(&self) -> Option<ProcessId> {
        Some(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{abd_bounded_profile, attiya_profile};
    use twobit_proto::OpOutcome;

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::max_resilience(n)
    }

    fn procs(n: usize, profile: CostProfile) -> Vec<PhasedProcess<u64>> {
        (0..n)
            .map(|i| {
                PhasedProcess::new(
                    ProcessId::new(i),
                    cfg(n),
                    ProcessId::new(0),
                    0u64,
                    profile.clone(),
                )
            })
            .collect()
    }

    /// Synchronous message pump; returns (messages delivered, completions).
    fn settle(
        ps: &mut [PhasedProcess<u64>],
        seed: Vec<(ProcessId, ProcessId, Padded<u64>)>,
    ) -> (usize, Vec<(OpId, OpOutcome<u64>)>) {
        let mut q = std::collections::VecDeque::from(seed);
        let mut delivered = 0;
        let mut completions = Vec::new();
        while let Some((from, to, m)) = q.pop_front() {
            delivered += 1;
            let mut fx = Effects::new();
            ps[to.index()].on_message(from, m, &mut fx);
            for (next, m2) in fx.drain_sends() {
                q.push_back((to, next, m2));
            }
            completions.extend(fx.drain_completions());
        }
        (delivered, completions)
    }

    #[test]
    fn bounded_abd_write_completes_with_quadratic_messages() {
        let n = 5;
        let mut ps = procs(n, abd_bounded_profile(n));
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(9), &mut fx);
        let seed: Vec<_> = fx
            .drain_sends()
            .map(|(to, m)| (ProcessId::new(0), to, m))
            .collect();
        let (delivered, completions) = settle(&mut ps, seed);
        assert_eq!(completions, vec![(OpId::new(0), OpOutcome::Written)]);
        // 6 phases: Value + Echo + 4×Sync. Echo costs (n−1)+(n−1)² = 20,
        // the others 2(n−1) = 8 each → 8 + 20 + 32 + seed(4 already counted
        // in delivered) ... just assert the Θ(n²) signature: more than
        // 6 × 2(n−1) (what 6 plain rounds would cost).
        assert!(delivered > 6 * 2 * (n - 1), "delivered={delivered}");
        // Everyone converged on the value.
        for p in &ps {
            assert_eq!(p.local_pair(), (1, &9));
        }
    }

    #[test]
    fn attiya_write_is_linear_in_n() {
        let n = 5;
        let mut ps = procs(n, attiya_profile(n));
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(9), &mut fx);
        let seed: Vec<_> = fx
            .drain_sends()
            .map(|(to, m)| (ProcessId::new(0), to, m))
            .collect();
        let (delivered, completions) = settle(&mut ps, seed);
        assert_eq!(completions.len(), 1);
        // 7 phases, each 2(n−1) messages, no echo: exactly 14(n−1).
        assert_eq!(delivered, 14 * (n - 1));
    }

    #[test]
    fn read_returns_freshest_value_across_quorum() {
        let n = 3;
        let mut ps = procs(n, attiya_profile(n));
        // Seed the fresher pair on a full quorum's worth of processes
        // (p0 and p2): any read quorum must then intersect it. (Seeding a
        // single process would not guarantee visibility — quorums of size
        // n−t=2 can miss one process.)
        for i in [0usize, 2] {
            ps[i].seq = 4;
            ps[i].value = 44;
        }
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(0), Operation::Read, &mut fx);
        let seed: Vec<_> = fx
            .drain_sends()
            .map(|(to, m)| (ProcessId::new(1), to, m))
            .collect();
        let (_, completions) = settle(&mut ps, seed);
        assert_eq!(completions, vec![(OpId::new(0), OpOutcome::ReadValue(44))]);
        // Write-back propagated the pair to the reader too.
        assert_eq!(ps[1].local_pair(), (4, &44));
    }

    #[test]
    fn padding_dominates_message_cost() {
        let n = 5;
        let profile = abd_bounded_profile(n);
        let p = PhasedProcess::new(
            ProcessId::new(0),
            cfg(n),
            ProcessId::new(0),
            0u64,
            profile.clone(),
        );
        let m = p.stamp(PhasedMsg::Sync { rid: 3 });
        assert_eq!(m.cost().control_bits, profile.control_bits_per_msg);
        assert_eq!(m.cost().data_bits, 0);
        let m = p.stamp(PhasedMsg::Value {
            rid: 3,
            seq: 1,
            value: 7u64,
        });
        assert_eq!(m.cost().control_bits, profile.control_bits_per_msg);
        assert_eq!(m.cost().data_bits, 64);
    }

    #[test]
    fn latencies_match_table_one() {
        let n = 5;
        assert_eq!(abd_bounded_profile(n).write_delta(), 12);
        assert_eq!(abd_bounded_profile(n).read_delta(), 12);
        assert_eq!(attiya_profile(n).write_delta(), 14);
        assert_eq!(attiya_profile(n).read_delta(), 18);
    }

    #[test]
    #[should_panic(expected = "non-writer")]
    fn non_writer_cannot_write() {
        let n = 3;
        let mut ps = procs(n, attiya_profile(n));
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(0), Operation::Write(1), &mut fx);
    }
}
