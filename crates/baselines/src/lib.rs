//! Baseline register algorithms the paper compares against (Table 1).
//!
//! * [`abd`] — the classic **ABD** SWMR algorithm (Attiya, Bar-Noy & Dolev,
//!   JACM 1995) with *unbounded* sequence numbers: writes are one
//!   broadcast/ack round (2Δ), reads are a query round plus a write-back
//!   round (4Δ). Message control information grows with the sequence number.
//! * [`mwmr`] — the multi-writer generalization (timestamps =
//!   ⟨counter, process-id⟩, both write and read are two rounds). Not in
//!   Table 1; a first-class protocol across the whole stack (all three
//!   backends, frames, the byte codec), checked by
//!   `twobit_lincheck::check_mwmr`.
//! * [`ohram`] — the latency-optimal competitor: **Oh-RAM** fast reads
//!   (arXiv 1610.08373), a hybrid one-round / one-and-a-half-round read on
//!   top of the classic one-round SWMR write. It concedes the bit budget
//!   (timestamps on the wire, an n²-message relay round as fallback) to
//!   win message delays — the third axis of the bench head-to-head.
//! * [`mixed`] — heterogeneous deployments: [`MixedProcess`] hosts the
//!   paper's SWMR protocol, the MWMR automaton, and Oh-RAM side by side in
//!   one sharded backend, with a prefix-discriminated [`MixedMsg`] codec.
//! * [`naive`] — a deliberately non-atomic strawman (local reads) used as
//!   a negative control for the checker and simulator.
//! * [`phased`] + [`profiles`] — **cost-faithful emulations** of the two
//!   bounded-control-information baselines of Table 1: the bounded version
//!   of ABD (O(n⁵)-bit messages, O(n²) messages and 12Δ per operation) and
//!   H. Attiya's algorithm (J. Algorithms 2000; O(n³)-bit messages, O(n)
//!   messages, 14Δ writes / 18Δ reads). The real bounded-timestamp
//!   constructions are multi-paper artifacts; Table 1 cites only their
//!   *costs*, which these emulations reproduce exactly on the wire while
//!   inheriting ABD's linearizability for actual data flow. See DESIGN.md §5
//!   for the substitution rationale; every emulated figure is flagged in
//!   EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abd;
pub mod mixed;
pub mod mwmr;
pub mod naive;
pub mod ohram;
pub mod phased;
pub mod profiles;

pub use abd::{AbdMsg, AbdProcess};
pub use mixed::{MixedMsg, MixedProcess};
pub use mwmr::{MwmrMsg, MwmrProcess, Timestamp};
pub use naive::{NaiveMsg, NaiveProcess};
pub use ohram::{OhRamMsg, OhRamProcess};
pub use phased::{CostProfile, PhasedMsg, PhasedProcess};
pub use profiles::{abd_bounded_profile, attiya_profile};
