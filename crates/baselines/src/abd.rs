//! The ABD single-writer multi-reader atomic register with unbounded
//! sequence numbers (Attiya, Bar-Noy & Dolev 1995), in its textbook form:
//!
//! * **write(v)**: the writer increments its sequence number, stores
//!   `(seq, v)` locally, broadcasts `WRITE(seq, v)` and waits for `n−t`
//!   acknowledgements (counting itself). One round ⇒ 2Δ, `2(n−1)` messages.
//! * **read()**: the reader broadcasts `READ_QUERY`, collects `n−t`
//!   `(seq, v)` replies (counting its own local pair), picks the pair with
//!   the largest `seq`, **writes it back** (`WRITE_BACK` + `n−t` acks,
//!   counting itself), then returns `v`. Two rounds ⇒ 4Δ, `4(n−1)`
//!   messages. The write-back is what prevents new/old inversions.
//!
//! Sequence numbers and read-request identifiers travel on the wire, so the
//! control information per message is `Θ(log seq)` — unbounded. The
//! [`WireMessage`] impl accounts for this precisely; it is the "unbounded
//! seq. nb" column of Table 1.

use serde::{Deserialize, Serialize};
use twobit_proto::bits::{gamma_bits, BitReader, BitWriter, WireError};
use twobit_proto::payload::bits_for;
use twobit_proto::{
    Automaton, Effects, MessageCost, OpId, Operation, Payload, ProcessId, SystemConfig, WireMessage,
};

/// Messages of the unbounded ABD algorithm. Six wire types.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbdMsg<V> {
    /// Writer announces a new value.
    Write {
        /// The write's sequence number.
        seq: u64,
        /// The written value.
        value: V,
    },
    /// Acknowledges `Write { seq, .. }`.
    WriteAck {
        /// Echoed sequence number.
        seq: u64,
    },
    /// Reader requests current `(seq, value)` pairs.
    ReadQuery {
        /// The reader's request identifier.
        rid: u64,
    },
    /// Answers a [`AbdMsg::ReadQuery`].
    ReadReply {
        /// Echoed request identifier.
        rid: u64,
        /// The responder's current sequence number.
        seq: u64,
        /// The responder's current value.
        value: V,
    },
    /// Reader propagates the freshest pair before returning (write-back).
    WriteBack {
        /// The reader's request identifier.
        rid: u64,
        /// Sequence number being written back.
        seq: u64,
        /// Value being written back.
        value: V,
    },
    /// Acknowledges a [`AbdMsg::WriteBack`].
    WriteBackAck {
        /// Echoed request identifier.
        rid: u64,
    },
}

/// Bits to name one of six message types.
const TAG_BITS: u64 = 3;

impl<V: Payload> WireMessage for AbdMsg<V> {
    fn kind(&self) -> &'static str {
        match self {
            AbdMsg::Write { .. } => "ABD_WRITE",
            AbdMsg::WriteAck { .. } => "ABD_WRITE_ACK",
            AbdMsg::ReadQuery { .. } => "ABD_READ_QUERY",
            AbdMsg::ReadReply { .. } => "ABD_READ_REPLY",
            AbdMsg::WriteBack { .. } => "ABD_WRITE_BACK",
            AbdMsg::WriteBackAck { .. } => "ABD_WRITE_BACK_ACK",
        }
    }

    /// Control bits = type tag + every sequence number / request id carried
    /// (at its exact binary width — the unbounded growth of Table 1 row 3).
    fn cost(&self) -> MessageCost {
        match self {
            AbdMsg::Write { seq, value } => {
                MessageCost::new(TAG_BITS + bits_for(*seq), value.data_bits())
            }
            AbdMsg::WriteAck { seq } => MessageCost::new(TAG_BITS + bits_for(*seq), 0),
            AbdMsg::ReadQuery { rid } => MessageCost::new(TAG_BITS + bits_for(*rid), 0),
            AbdMsg::ReadReply { rid, seq, value } => MessageCost::new(
                TAG_BITS + bits_for(*rid) + bits_for(*seq),
                value.data_bits(),
            ),
            AbdMsg::WriteBack { rid, seq, value } => MessageCost::new(
                TAG_BITS + bits_for(*rid) + bits_for(*seq),
                value.data_bits(),
            ),
            AbdMsg::WriteBackAck { rid } => MessageCost::new(TAG_BITS + bits_for(*rid), 0),
        }
    }

    /// Wire size: 3-bit tag, then every sequence number / request id as a
    /// self-delimiting gamma code (`γ(x+1)`, ≈ twice its bare binary
    /// width), then the value. The modeled cost uses bare widths, so the
    /// wire figure is slightly larger — exactly the price ABD's unbounded
    /// counters pay for being decodable at all, and the gap the two-bit
    /// algorithm does not have.
    fn encoded_bits(&self) -> u64 {
        TAG_BITS
            + match self {
                AbdMsg::Write { seq, value } => gamma_bits(seq + 1) + value.encoded_bits(),
                AbdMsg::WriteAck { seq } => gamma_bits(seq + 1),
                AbdMsg::ReadQuery { rid } => gamma_bits(rid + 1),
                AbdMsg::ReadReply { rid, seq, value } | AbdMsg::WriteBack { rid, seq, value } => {
                    gamma_bits(rid + 1) + gamma_bits(seq + 1) + value.encoded_bits()
                }
                AbdMsg::WriteBackAck { rid } => gamma_bits(rid + 1),
            }
    }

    fn encode_into(&self, w: &mut BitWriter) -> Result<(), WireError> {
        match self {
            AbdMsg::Write { seq, value } => {
                w.put_bits(0, TAG_BITS as u32);
                w.put_gamma(seq + 1);
                value.encode_into(w)
            }
            AbdMsg::WriteAck { seq } => {
                w.put_bits(1, TAG_BITS as u32);
                w.put_gamma(seq + 1);
                Ok(())
            }
            AbdMsg::ReadQuery { rid } => {
                w.put_bits(2, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                Ok(())
            }
            AbdMsg::ReadReply { rid, seq, value } => {
                w.put_bits(3, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                w.put_gamma(seq + 1);
                value.encode_into(w)
            }
            AbdMsg::WriteBack { rid, seq, value } => {
                w.put_bits(4, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                w.put_gamma(seq + 1);
                value.encode_into(w)
            }
            AbdMsg::WriteBackAck { rid } => {
                w.put_bits(5, TAG_BITS as u32);
                w.put_gamma(rid + 1);
                Ok(())
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let gamma_minus_one =
            |r: &mut BitReader<'_>| -> Result<u64, WireError> { Ok(r.get_gamma()? - 1) };
        match r.get_bits(TAG_BITS as u32)? {
            0 => Ok(AbdMsg::Write {
                seq: gamma_minus_one(r)?,
                value: V::decode(r)?,
            }),
            1 => Ok(AbdMsg::WriteAck {
                seq: gamma_minus_one(r)?,
            }),
            2 => Ok(AbdMsg::ReadQuery {
                rid: gamma_minus_one(r)?,
            }),
            3 => Ok(AbdMsg::ReadReply {
                rid: gamma_minus_one(r)?,
                seq: gamma_minus_one(r)?,
                value: V::decode(r)?,
            }),
            4 => Ok(AbdMsg::WriteBack {
                rid: gamma_minus_one(r)?,
                seq: gamma_minus_one(r)?,
                value: V::decode(r)?,
            }),
            5 => Ok(AbdMsg::WriteBackAck {
                rid: gamma_minus_one(r)?,
            }),
            _ => Err(WireError::Malformed("unknown ABD message tag")),
        }
    }
}

#[derive(Clone, Debug)]
enum Pending<V> {
    Write {
        op_id: OpId,
        seq: u64,
        acks: usize,
    },
    Query {
        op_id: OpId,
        rid: u64,
        replies: usize,
        best_seq: u64,
        best_value: V,
    },
    WriteBack {
        op_id: OpId,
        rid: u64,
        acks: usize,
        value: V,
    },
}

/// One process of the unbounded-ABD SWMR register.
#[derive(Clone, Debug)]
pub struct AbdProcess<V> {
    id: ProcessId,
    cfg: SystemConfig,
    writer: ProcessId,
    /// Current `(seq, value)` pair (the server state).
    seq: u64,
    value: V,
    /// Writer-side sequence counter (equals `seq` at the writer).
    write_counter: u64,
    /// Reader-side request counter.
    rid_counter: u64,
    pending: Option<Pending<V>>,
}

impl<V: Payload> AbdProcess<V> {
    /// Creates process `id`; `writer` is the unique writer; `v0` the initial
    /// register value.
    pub fn new(id: ProcessId, cfg: SystemConfig, writer: ProcessId, v0: V) -> Self {
        assert!(id.index() < cfg.n(), "process id out of range");
        assert!(writer.index() < cfg.n(), "writer id out of range");
        AbdProcess {
            id,
            cfg,
            writer,
            seq: 0,
            value: v0,
            write_counter: 0,
            rid_counter: 0,
            pending: None,
        }
    }

    /// The current local `(seq, value)` pair (for tests/inspection).
    pub fn local_pair(&self) -> (u64, &V) {
        (self.seq, &self.value)
    }

    /// Adopts `(seq, value)` if fresher than the local pair.
    fn absorb(&mut self, seq: u64, value: V) {
        if seq > self.seq {
            self.seq = seq;
            self.value = value;
        }
    }

    fn broadcast(&self, msg: &AbdMsg<V>, fx: &mut Effects<AbdMsg<V>, V>) {
        for j in self.cfg.peers(self.id).collect::<Vec<_>>() {
            fx.send(j, msg.clone());
        }
    }

    fn check_quorum(&mut self, fx: &mut Effects<AbdMsg<V>, V>) {
        let quorum = self.cfg.quorum();
        match self.pending.take() {
            Some(Pending::Write { op_id, seq, acks }) => {
                if acks >= quorum {
                    fx.complete_write(op_id);
                } else {
                    self.pending = Some(Pending::Write { op_id, seq, acks });
                }
            }
            Some(Pending::Query {
                op_id,
                rid,
                replies,
                best_seq,
                best_value,
            }) => {
                if replies >= quorum {
                    // Phase 2: adopt + write back the freshest pair.
                    self.absorb(best_seq, best_value.clone());
                    let rid2 = self.next_rid();
                    self.broadcast(
                        &AbdMsg::WriteBack {
                            rid: rid2,
                            seq: best_seq,
                            value: best_value.clone(),
                        },
                        fx,
                    );
                    self.pending = Some(Pending::WriteBack {
                        op_id,
                        rid: rid2,
                        acks: 1, // ourselves
                        value: best_value,
                    });
                    self.check_quorum(fx); // n = 1 completes immediately
                } else {
                    self.pending = Some(Pending::Query {
                        op_id,
                        rid,
                        replies,
                        best_seq,
                        best_value,
                    });
                }
            }
            Some(Pending::WriteBack {
                op_id,
                rid,
                acks,
                value,
            }) => {
                if acks >= quorum {
                    fx.complete_read(op_id, value);
                } else {
                    self.pending = Some(Pending::WriteBack {
                        op_id,
                        rid,
                        acks,
                        value,
                    });
                }
            }
            None => {}
        }
    }

    fn next_rid(&mut self) -> u64 {
        self.rid_counter += 1;
        self.rid_counter
    }
}

impl<V: Payload> Automaton for AbdProcess<V> {
    type Value = V;
    type Msg = AbdMsg<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// # Panics
    ///
    /// Panics if a write is invoked on a non-writer process, or if an
    /// operation is invoked while another is pending.
    fn on_invoke(&mut self, op_id: OpId, op: Operation<V>, fx: &mut Effects<AbdMsg<V>, V>) {
        assert!(
            self.pending.is_none(),
            "{}: operation already pending",
            self.id
        );
        match op {
            Operation::Write(v) => {
                assert!(
                    self.id == self.writer,
                    "{}: write invoked on a non-writer process",
                    self.id
                );
                self.write_counter += 1;
                let seq = self.write_counter;
                self.absorb(seq, v.clone());
                self.broadcast(&AbdMsg::Write { seq, value: v }, fx);
                self.pending = Some(Pending::Write {
                    op_id,
                    seq,
                    acks: 1, // ourselves
                });
                self.check_quorum(fx);
            }
            Operation::Read => {
                let rid = self.next_rid();
                self.broadcast(&AbdMsg::ReadQuery { rid }, fx);
                self.pending = Some(Pending::Query {
                    op_id,
                    rid,
                    replies: 1, // our own local pair
                    best_seq: self.seq,
                    best_value: self.value.clone(),
                });
                self.check_quorum(fx);
            }
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: AbdMsg<V>, fx: &mut Effects<AbdMsg<V>, V>) {
        match msg {
            AbdMsg::Write { seq, value } => {
                self.absorb(seq, value);
                fx.send(from, AbdMsg::WriteAck { seq });
            }
            AbdMsg::WriteAck { seq } => {
                if let Some(Pending::Write {
                    seq: want, acks, ..
                }) = self.pending.as_mut()
                {
                    if seq == *want {
                        *acks += 1;
                        self.check_quorum(fx);
                    }
                }
            }
            AbdMsg::ReadQuery { rid } => {
                fx.send(
                    from,
                    AbdMsg::ReadReply {
                        rid,
                        seq: self.seq,
                        value: self.value.clone(),
                    },
                );
            }
            AbdMsg::ReadReply { rid, seq, value } => {
                if let Some(Pending::Query {
                    rid: want,
                    replies,
                    best_seq,
                    best_value,
                    ..
                }) = self.pending.as_mut()
                {
                    if rid == *want {
                        *replies += 1;
                        if seq > *best_seq {
                            *best_seq = seq;
                            *best_value = value;
                        }
                        self.check_quorum(fx);
                    }
                }
            }
            AbdMsg::WriteBack { rid, seq, value } => {
                self.absorb(seq, value);
                fx.send(from, AbdMsg::WriteBackAck { rid });
            }
            AbdMsg::WriteBackAck { rid } => {
                if let Some(Pending::WriteBack {
                    rid: want, acks, ..
                }) = self.pending.as_mut()
                {
                    if rid == *want {
                        *acks += 1;
                        self.check_quorum(fx);
                    }
                }
            }
        }
    }

    /// Local memory: the `(seq, value)` pair plus counters — note this is
    /// *bounded per process* only because the history is not kept; the
    /// sequence number itself grows without bound (Table 1 row 4 calls the
    /// unbounded-ABD column "unbounded").
    fn state_bits(&self) -> u64 {
        bits_for(self.seq)
            + self.value.data_bits()
            + bits_for(self.write_counter)
            + bits_for(self.rid_counter)
    }

    /// ABD's write permission is statically pinned to its single writer.
    fn swmr_writer(&self) -> Option<ProcessId> {
        Some(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_proto::OpOutcome;

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::max_resilience(n)
    }

    fn procs(n: usize) -> Vec<AbdProcess<u64>> {
        (0..n)
            .map(|i| AbdProcess::new(ProcessId::new(i), cfg(n), ProcessId::new(0), 0u64))
            .collect()
    }

    #[test]
    fn write_completes_after_quorum_acks() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[0].on_invoke(OpId::new(0), Operation::Write(5), &mut fx);
        let sends: Vec<_> = fx.drain_sends().collect();
        assert_eq!(sends.len(), 2);
        assert!(fx.completions().is_empty());
        // p1 acks.
        let mut fx1 = Effects::new();
        ps[1].on_message(ProcessId::new(0), sends[0].1.clone(), &mut fx1);
        let ack = fx1.drain_sends().next().unwrap();
        assert_eq!(ack.1.kind(), "ABD_WRITE_ACK");
        let mut fx0 = Effects::new();
        ps[0].on_message(ProcessId::new(1), ack.1, &mut fx0);
        assert_eq!(fx0.completions(), &[(OpId::new(0), OpOutcome::Written)]);
        assert_eq!(ps[1].local_pair(), (1, &5));
    }

    #[test]
    fn stale_write_does_not_regress() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[1].on_message(
            ProcessId::new(0),
            AbdMsg::Write { seq: 5, value: 50 },
            &mut fx,
        );
        ps[1].on_message(
            ProcessId::new(0),
            AbdMsg::Write { seq: 3, value: 30 },
            &mut fx,
        );
        assert_eq!(ps[1].local_pair(), (5, &50));
    }

    #[test]
    fn read_queries_then_writes_back() {
        let mut ps = procs(3);
        // Seed p2 with a fresh value the reader doesn't have.
        let mut fx = Effects::new();
        ps[2].on_message(
            ProcessId::new(0),
            AbdMsg::Write { seq: 1, value: 7 },
            &mut fx,
        );
        // p1 reads.
        let mut fx1 = Effects::new();
        ps[1].on_invoke(OpId::new(0), Operation::Read, &mut fx1);
        let queries: Vec<_> = fx1.drain_sends().collect();
        assert_eq!(queries.len(), 2);
        // p2 replies with (1, 7); p0 replies with (0, 0) — deliver p2's.
        let mut fx2 = Effects::new();
        ps[2].on_message(ProcessId::new(1), queries[1].1.clone(), &mut fx2);
        let reply = fx2.drain_sends().next().unwrap().1;
        let mut fx1b = Effects::new();
        ps[1].on_message(ProcessId::new(2), reply, &mut fx1b);
        // Quorum of 2 replies (self + p2) → write-back broadcast starts.
        let wbs: Vec<_> = fx1b.drain_sends().collect();
        assert_eq!(wbs.len(), 2);
        assert!(matches!(
            wbs[0].1,
            AbdMsg::WriteBack {
                seq: 1,
                value: 7,
                ..
            }
        ));
        assert!(fx1b.completions().is_empty());
        // One write-back ack (self already counted) completes the read.
        let mut fx0 = Effects::new();
        ps[0].on_message(ProcessId::new(1), wbs[0].1.clone(), &mut fx0);
        let ack = fx0.drain_sends().next().unwrap().1;
        let mut fx1c = Effects::new();
        ps[1].on_message(ProcessId::new(0), ack, &mut fx1c);
        assert_eq!(
            fx1c.completions(),
            &[(OpId::new(0), OpOutcome::ReadValue(7))]
        );
        // The write-back updated p0 as well.
        assert_eq!(ps[0].local_pair(), (1, &7));
    }

    #[test]
    fn stale_replies_are_ignored() {
        let mut ps = procs(5);
        let mut fx = Effects::new();
        ps[1].on_invoke(OpId::new(0), Operation::Read, &mut fx);
        // A reply with a mismatched rid does nothing.
        let mut fx1 = Effects::new();
        ps[1].on_message(
            ProcessId::new(2),
            AbdMsg::ReadReply {
                rid: 99,
                seq: 9,
                value: 9,
            },
            &mut fx1,
        );
        assert!(fx1.is_empty());
    }

    #[test]
    fn control_bits_grow_with_seq() {
        let small = AbdMsg::Write {
            seq: 1,
            value: 0u64,
        };
        let big = AbdMsg::Write {
            seq: 1 << 40,
            value: 0u64,
        };
        assert_eq!(small.cost().control_bits, 3 + 1);
        assert_eq!(big.cost().control_bits, 3 + 41);
        assert!(big.cost().control_bits > small.cost().control_bits);
    }

    #[test]
    #[should_panic(expected = "non-writer")]
    fn non_writer_cannot_write() {
        let mut ps = procs(3);
        let mut fx = Effects::new();
        ps[2].on_invoke(OpId::new(0), Operation::Write(1), &mut fx);
    }

    #[test]
    fn singleton_completes_locally() {
        let c = SystemConfig::new(1, 0).unwrap();
        let mut p = AbdProcess::new(ProcessId::new(0), c, ProcessId::new(0), 0u64);
        let mut fx = Effects::new();
        p.on_invoke(OpId::new(0), Operation::Write(3), &mut fx);
        assert_eq!(fx.completions().len(), 1);
        let mut fx = Effects::new();
        p.on_invoke(OpId::new(1), Operation::Read, &mut fx);
        assert_eq!(fx.completions(), &[(OpId::new(1), OpOutcome::ReadValue(3))]);
    }
}
