//! The per-process register cache and its safety gate.
//!
//! One [`CacheWriter`]/[`CacheReader`] pair exists per process. The writer
//! half lives with the process's event loop and publishes a snapshot on
//! every *locally completed* operation (a completed write publishes the
//! written value, a completed read the value it returned); the reader half
//! lives with the invocation path and answers: *may this read be served
//! right now, with no communication at all?*
//!
//! # The safety gate
//!
//! In the paper's `CAMP_{n,t}` model a cached value at an arbitrary
//! process can never be served safely: a remote write completes against a
//! quorum that may exclude this process, so "my cache was confirmed by a
//! completed operation" is indistinguishable from "a newer write finished
//! elsewhere" — serving it risks a new/old inversion. The gate therefore
//! admits a local read only when **this process is the register's single
//! writer** (per [`Automaton::swmr_writer`]): the writer observes every
//! write before it completes, so its latest locally-completed value is
//! always current. This is the driver-level generalization of Fig. 1's
//! "the writer can directly return its value" remark (`writer_fast_read`),
//! extended to any SWMR automaton and measured in `NetStats`.
//!
//! [`CacheMode::UnsafeAblated`] removes the gate — any confirmed entry is
//! served blindly at any process. It exists as a negative control: the
//! model checker must (and does) find the resulting stale read, proving
//! the gate is load-bearing. See `docs/read-cache.md`.
//!
//! [`Automaton::swmr_writer`]: https://docs.rs/twobit-proto

use std::sync::Arc;

use crate::epoch::{self, EpochWriter, ReaderHandle, Slot};

/// How (whether) a backend consults the local read cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// No cache: every read runs the message protocol (the pre-cache
    /// behavior, and the baseline the bench compares against).
    #[default]
    Off,
    /// Serve a read locally only when the safety gate holds: the reading
    /// process is the register's SWMR writer and holds a confirmed entry.
    Safe,
    /// Serve any confirmed entry at any process, ignoring the gate.
    /// **Deliberately unsound** — a negative control for the checkers.
    UnsafeAblated,
}

/// A confirmed cache entry for one register.
#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Whether the publishing process is this register's single writer —
    /// the gate's co-location bit, captured at publish time.
    writer_here: bool,
}

/// What the cache said about one read attempt. Each variant maps onto one
/// `NetStats` counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheDecision<V> {
    /// Serve the read locally with this value: no messages, no wire bytes.
    Hit(V),
    /// No confirmed entry for this register; run the protocol.
    Miss,
    /// An entry exists but the safety gate refused it; run the protocol.
    Fallback,
}

/// The slots shared by the two halves of one process's cache.
#[derive(Debug)]
struct SlotTable<V: Send + Sync + 'static> {
    slots: Vec<Slot<Entry<V>>>,
}

/// Creates one process's cache: the writer half for its event loop, the
/// reader half for its invocation path. `registers` is the register-space
/// size; `mode` applies to both halves.
pub fn cache_pair<V: Clone + Send + Sync + 'static>(
    registers: usize,
    mode: CacheMode,
) -> (CacheWriter<V>, CacheReader<V>) {
    let (writer, registry) = epoch::new();
    let table = Arc::new(SlotTable {
        slots: (0..registers).map(|_| Slot::empty()).collect(),
    });
    (
        CacheWriter {
            table: Arc::clone(&table),
            writer,
            mode,
        },
        CacheReader {
            table,
            reader: registry.register(),
            mode,
        },
    )
}

/// The publishing half: owned by the process event loop, updated on every
/// locally-completed operation.
#[derive(Debug)]
pub struct CacheWriter<V: Send + Sync + 'static> {
    table: Arc<SlotTable<V>>,
    writer: EpochWriter,
    mode: CacheMode,
}

impl<V: Clone + Send + Sync + 'static> CacheWriter<V> {
    /// Publishes the value of a locally-completed operation on register
    /// `reg`. `writer_here` records whether this process is the register's
    /// SWMR writer (from `Automaton::swmr_writer`). Replaced snapshots are
    /// reclaimed epoch-deferred — never under a concurrent reader.
    pub fn publish(&mut self, reg: usize, value: V, writer_here: bool) {
        if self.mode == CacheMode::Off {
            return;
        }
        self.table.slots[reg].store(Box::new(Entry { value, writer_here }), &mut self.writer);
        self.writer.try_reclaim();
    }

    /// The configured mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Replaced-but-unreclaimed snapshots (0 in quiescence).
    pub fn garbage_len(&self) -> usize {
        self.writer.garbage_len()
    }
}

/// The serving half: owned by the invocation path; decides per read.
#[derive(Debug)]
pub struct CacheReader<V: Send + Sync + 'static> {
    table: Arc<SlotTable<V>>,
    reader: ReaderHandle,
    mode: CacheMode,
}

impl<V: Clone + Send + Sync + 'static> CacheReader<V> {
    /// Consults the cache for a read on register `reg`. Lock-free: pins an
    /// epoch, loads the slot, applies the gate, clones the value out (for
    /// `bytes::Bytes` values the clone is a reference-count bump — the
    /// read really is a pointer load).
    pub fn try_read(&self, reg: usize) -> CacheDecision<V> {
        if self.mode == CacheMode::Off {
            return CacheDecision::Miss;
        }
        let guard = self.reader.pin();
        match self.table.slots[reg].load(&guard) {
            None => CacheDecision::Miss,
            Some(entry) => {
                if entry.writer_here || self.mode == CacheMode::UnsafeAblated {
                    CacheDecision::Hit(entry.value.clone())
                } else {
                    CacheDecision::Fallback
                }
            }
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_never_serves_and_never_stores() {
        let (mut w, r) = cache_pair::<u64>(2, CacheMode::Off);
        w.publish(0, 7, true);
        assert_eq!(r.try_read(0), CacheDecision::Miss);
        assert_eq!(w.garbage_len(), 0);
    }

    #[test]
    fn safe_mode_gates_on_writer_co_location() {
        let (mut w, r) = cache_pair::<u64>(3, CacheMode::Safe);
        assert_eq!(r.try_read(0), CacheDecision::Miss, "nothing confirmed yet");
        w.publish(0, 10, true); // this process is register 0's writer
        w.publish(1, 20, false); // ...but only a reader of register 1
        assert_eq!(r.try_read(0), CacheDecision::Hit(10));
        assert_eq!(r.try_read(1), CacheDecision::Fallback, "gate refuses");
        assert_eq!(r.try_read(2), CacheDecision::Miss);
        // Later completions replace the snapshot.
        w.publish(0, 11, true);
        assert_eq!(r.try_read(0), CacheDecision::Hit(11));
    }

    #[test]
    fn ablated_mode_serves_blindly() {
        let (mut w, r) = cache_pair::<u64>(1, CacheMode::UnsafeAblated);
        w.publish(0, 99, false);
        assert_eq!(
            r.try_read(0),
            CacheDecision::Hit(99),
            "the ablation serves entries the gate would refuse — that is \
             exactly what the model checker must catch"
        );
    }

    #[test]
    fn publishes_reclaim_across_threads() {
        // Writer half on one thread, reader half on another: the epoch
        // machinery keeps every served snapshot valid.
        const ROUNDS: u64 = 20_000;
        let (mut w, r) = cache_pair::<Vec<u64>>(1, CacheMode::Safe);
        w.publish(0, vec![0, 0], true);
        let reader = std::thread::spawn(move || {
            // Spin until the writer's final snapshot is visible; every
            // intermediate observation must be monotone and untorn.
            let mut last = 0;
            loop {
                match r.try_read(0) {
                    CacheDecision::Hit(v) => {
                        assert_eq!(v[0], v[1], "torn snapshot");
                        assert!(v[0] >= last, "snapshots move forward");
                        last = v[0];
                        if last == ROUNDS {
                            return;
                        }
                    }
                    other => panic!("confirmed entry vanished: {other:?}"),
                }
            }
        });
        for i in 1..=ROUNDS {
            w.publish(0, vec![i, i], true);
        }
        reader.join().expect("reader panicked");
        w.publish(0, vec![ROUNDS, ROUNDS], true);
        assert!(
            w.garbage_len() <= 1,
            "steady-state reclamation keeps garbage bounded"
        );
    }
}
