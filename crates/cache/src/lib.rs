//! Process-local read caching with epoch-based reclamation.
//!
//! The paper makes atomic registers cheap *on the wire* — two control bits
//! per message. This crate makes the dominant operation cheap *off* the
//! wire: a per-process snapshot of each register's last locally-completed
//! value, maintained with single-writer multi-reader epoch reclamation
//! ([`epoch`]), lets a read that passes the safety gate ([`cache`]) return
//! with **zero communication** — a pinned pointer load and a clone.
//!
//! Two layers:
//!
//! * [`epoch`] — the reclamation substrate: one writer advances a global
//!   epoch; readers pin it with RAII guards; replaced values are retired
//!   and freed only once no guard can still see them. Lock-free and
//!   allocation-free on the read path. This is the workspace's only
//!   `unsafe` code, documented invariant by invariant.
//! * [`cache`] — the register cache proper: [`CacheWriter`] publishes each
//!   locally-completed operation's value, [`CacheReader`] serves a read
//!   only when the gate holds (reader co-located with the register's SWMR
//!   writer, entry confirmed by a completed operation).
//!   [`CacheMode::UnsafeAblated`] removes the gate as a negative control
//!   for the model checker.
//!
//! Every backend (`twobit-simnet`, `twobit-runtime`, `twobit-transport`)
//! wires one pair per process and counts hits/misses/fallbacks in
//! `NetStats`. Lifecycle and the soundness argument: `docs/read-cache.md`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod epoch;

pub use cache::{cache_pair, CacheDecision, CacheMode, CacheReader, CacheWriter};
