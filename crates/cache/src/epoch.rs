//! Single-writer multi-reader epoch-based reclamation.
//!
//! The pattern (after the `swmr-epoch` design): one **writer** owns every
//! mutation and advances a global epoch counter; any number of **readers**
//! pin the current epoch with an RAII [`Guard`] before touching shared
//! pointers and unpin on drop. A [`Slot`] replaced by the writer is not
//! freed — it is *retired* at the current epoch, and reclaimed only once
//! every active reader has pinned a strictly later epoch, at which point no
//! guard that could still observe the old pointer exists. The read path is
//! lock-free and allocation-free: a pin is two atomic stores and a load, a
//! [`Slot::load`] is one `Acquire` pointer load.
//!
//! Memory ordering: epoch transitions and pins use `SeqCst` so the writer's
//! *unlink → advance* sequence and a reader's *pin → re-check* handshake
//! fall into one total order (the standard epoch argument: a reader whose
//! slot publishes epoch `e` started its critical section after the epoch
//! reached `e`, hence after every unlink retired at an epoch `< e` — so
//! retiring garbage is safe once `min(active pins) > retire epoch`).
//!
//! This crate contains the workspace's only `unsafe` code (the pointer
//! dereference behind [`Slot::load`] and the `Box::from_raw` behind
//! reclamation); each site documents the invariant that justifies it.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Sentinel stored in a reader's slot while it holds no guard.
const IDLE: u64 = u64::MAX;

/// State shared between the writer and every reader.
#[derive(Debug)]
struct Shared {
    /// The global epoch. Only [`EpochWriter::advance`] increments it.
    epoch: AtomicU64,
    /// Registered readers (weak, so dropped handles fall out on their own).
    /// Locked only on registration and during reclamation — never on the
    /// pin/load path.
    readers: Mutex<Vec<Weak<ReaderSlot>>>,
}

/// One reader's published pin state.
#[derive(Debug)]
struct ReaderSlot {
    /// The epoch this reader is pinned at, or [`IDLE`].
    active: AtomicU64,
}

/// Creates a connected writer/registry pair.
pub fn new() -> (EpochWriter, ReaderRegistry) {
    let shared = Arc::new(Shared {
        epoch: AtomicU64::new(0),
        readers: Mutex::new(Vec::new()),
    });
    (
        EpochWriter {
            shared: Arc::clone(&shared),
            garbage: Vec::new(),
        },
        ReaderRegistry { shared },
    )
}

/// The single mutating side: advances the epoch, collects retired boxes,
/// and reclaims them once no reader can still see them.
#[derive(Debug)]
pub struct EpochWriter {
    shared: Arc<Shared>,
    /// Retired allocations, tagged with the epoch they were unlinked at.
    garbage: Vec<(u64, *mut (dyn Send + Sync))>,
}

// SAFETY: the raw pointers in `garbage` are uniquely owned retired boxes
// (unlinked from every `Slot`, reachable only here); moving the writer to
// another thread moves that ownership with it.
unsafe impl Send for EpochWriter {}

impl EpochWriter {
    /// The current global epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Advances the global epoch. Call after unlinking (see
    /// [`Slot::store`], which does this for you).
    fn advance(&self) {
        self.shared.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Takes ownership of a retired allocation, to be freed once every
    /// reader has moved past the current epoch.
    fn retire(&mut self, ptr: *mut (dyn Send + Sync)) {
        let at = self.shared.epoch.load(Ordering::SeqCst);
        self.garbage.push((at, ptr));
    }

    /// Frees every retired allocation no pinned reader can still observe;
    /// returns how many were reclaimed. Cheap when there is no garbage.
    pub fn try_reclaim(&mut self) -> usize {
        if self.garbage.is_empty() {
            return 0;
        }
        let min_active = {
            let mut readers = self
                .shared
                .readers
                .lock()
                .expect("reader registry poisoned");
            // Drop registry entries whose handle is gone.
            readers.retain(|w| w.strong_count() > 0);
            readers
                .iter()
                .filter_map(Weak::upgrade)
                .map(|slot| slot.active.load(Ordering::SeqCst))
                .min()
                .unwrap_or(IDLE)
        };
        let before = self.garbage.len();
        // An item retired at epoch `r` is safe once every active pin is at
        // an epoch `> r`: such readers entered their critical section after
        // the unlink, so they can only see the replacement pointer.
        self.garbage.retain(|&(retired_at, ptr)| {
            if retired_at < min_active {
                // SAFETY: `ptr` came from `Box::into_raw` in `Slot::store`,
                // was unlinked there (no Slot holds it), and the epoch
                // condition above proves no guard can still dereference it.
                // `retain` visits each element once, so it is freed once.
                drop(unsafe { Box::from_raw(ptr) });
                false
            } else {
                true
            }
        });
        before - self.garbage.len()
    }

    /// Retired allocations not yet reclaimed.
    pub fn garbage_len(&self) -> usize {
        self.garbage.len()
    }
}

impl Drop for EpochWriter {
    fn drop(&mut self) {
        // The writer owns all retired allocations; free them regardless of
        // readers — a `Guard` cannot outlive the `Slot`s it reads through,
        // and those keep the values they still expose (only *replaced*
        // values are ever in `garbage`, and a guard pinned before a
        // replacement blocks `try_reclaim`, not this drop). Dropping the
        // writer while readers are mid-guard is prevented by the owning
        // structure (`CacheWriter` / `CacheReader` share the `Shared` arc,
        // and the cache API never frees slots before both halves dropped).
        for (_, ptr) in self.garbage.drain(..) {
            // SAFETY: uniquely owned retired box, freed exactly once.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

/// Cloneable handle readers register through.
#[derive(Clone, Debug)]
pub struct ReaderRegistry {
    shared: Arc<Shared>,
}

impl ReaderRegistry {
    /// Registers a new logical reader. Each handle represents **one**
    /// reader at a time (guards from one handle must not overlap across
    /// threads — the handle is deliberately `!Sync`); register one handle
    /// per reading thread.
    pub fn register(&self) -> ReaderHandle {
        let slot = Arc::new(ReaderSlot {
            active: AtomicU64::new(IDLE),
        });
        self.shared
            .readers
            .lock()
            .expect("reader registry poisoned")
            .push(Arc::downgrade(&slot));
        ReaderHandle {
            slot,
            shared: Arc::clone(&self.shared),
            _single_threaded: PhantomData,
        }
    }
}

/// One registered reader: pins epochs, producing RAII [`Guard`]s.
#[derive(Debug)]
pub struct ReaderHandle {
    slot: Arc<ReaderSlot>,
    shared: Arc<Shared>,
    /// Keeps the handle `Send` but `!Sync`: one logical reader per handle.
    _single_threaded: PhantomData<std::cell::Cell<()>>,
}

impl ReaderHandle {
    /// Pins the current epoch, returning a guard that keeps every pointer
    /// loaded under it alive until the guard drops. Lock-free.
    pub fn pin(&self) -> Guard<'_> {
        let prev = self.slot.active.load(Ordering::Relaxed);
        loop {
            let e = self.shared.epoch.load(Ordering::SeqCst);
            // Publish the pin, then re-check: if the writer advanced in
            // between, the published pin may be too old to block a
            // concurrent reclamation — re-publish at the newer epoch.
            // (Nested guards only ever tighten: `e` ≥ the outer pin.)
            self.slot.active.store(e.min(prev), Ordering::SeqCst);
            if self.shared.epoch.load(Ordering::SeqCst) == e {
                return Guard {
                    slot: &self.slot,
                    restore: prev,
                };
            }
        }
    }
}

/// RAII pin on an epoch. While alive, the writer reclaims nothing retired
/// at or after the pinned epoch, so references obtained via
/// [`Slot::load`] under this guard stay valid.
#[derive(Debug)]
pub struct Guard<'r> {
    slot: &'r ReaderSlot,
    /// The slot value to restore on drop ([`IDLE`], or the enclosing
    /// guard's pin when guards nest).
    restore: u64,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.slot.active.store(self.restore, Ordering::SeqCst);
    }
}

/// A writer-mutated, reader-shared pointer cell: the unit the cache stores
/// one register's entry in.
#[derive(Debug)]
pub struct Slot<T: Send + Sync + 'static> {
    ptr: AtomicPtr<T>,
}

impl<T: Send + Sync + 'static> Slot<T> {
    /// An empty slot.
    pub fn empty() -> Self {
        Slot {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Loads the current value under `guard`; `None` while empty. The
    /// reference lives as long as the guard: reclamation of a replaced
    /// value waits for every guard pinned no later than the replacement.
    pub fn load<'g>(&self, _guard: &'g Guard<'_>) -> Option<&'g T> {
        let p = self.ptr.load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // SAFETY: `p` was published by `Slot::store` from
            // `Box::into_raw` (valid, aligned, initialized). It cannot be
            // freed while this guard lives: reclamation requires every
            // active pin to be *after* the retire epoch, and this load
            // happens under a pin taken before it — the guard's lifetime
            // bound keeps the reference from escaping the pin.
            Some(unsafe { &*p })
        }
    }

    /// Replaces the value (writer side), retiring the old allocation into
    /// the writer's garbage list and advancing the epoch.
    pub fn store(&self, value: Box<T>, writer: &mut EpochWriter) {
        let new = Box::into_raw(value);
        let old = self.ptr.swap(new, Ordering::AcqRel);
        // Unlink first, then advance: a reader that pins the post-advance
        // epoch can only load `new`.
        writer.advance();
        if !old.is_null() {
            writer.retire(old);
        }
    }
}

impl<T: Send + Sync + 'static> Drop for Slot<T> {
    fn drop(&mut self) {
        let p = self.ptr.load(Ordering::Acquire);
        if !p.is_null() {
            // SAFETY: dropping the slot means no reader can reach it any
            // more (the owning cache keeps slots alive as long as any
            // reader handle); the current pointer is uniquely owned here.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A payload that counts its drops, to observe reclamation directly.
    struct Counted(Arc<AtomicUsize>);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn load_sees_latest_store() {
        let (mut w, registry) = new();
        let slot = Slot::empty();
        let reader = registry.register();
        assert!(slot.load(&reader.pin()).is_none());
        slot.store(Box::new(41), &mut w);
        slot.store(Box::new(42), &mut w);
        let guard = reader.pin();
        assert_eq!(slot.load(&guard), Some(&42));
    }

    #[test]
    fn reclamation_waits_for_active_guards() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut w, registry) = new();
        let slot = Slot::empty();
        let reader = registry.register();

        slot.store(Box::new(Counted(Arc::clone(&drops))), &mut w);
        let guard = reader.pin();
        let held = slot.load(&guard).expect("stored");
        // Replace while a guard still references the old value.
        slot.store(Box::new(Counted(Arc::clone(&drops))), &mut w);
        assert_eq!(w.try_reclaim(), 0, "pinned epoch blocks reclamation");
        assert_eq!(w.garbage_len(), 1);
        // The old reference is still valid — this read is the whole point.
        assert_eq!(held.0.load(Ordering::SeqCst), 0);
        drop(guard);
        assert_eq!(w.try_reclaim(), 1, "unpinned: old value reclaimed");
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(w.garbage_len(), 0);
    }

    #[test]
    fn idle_readers_do_not_block_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut w, registry) = new();
        let slot = Slot::empty();
        let _reader = registry.register(); // registered, never pinned
        slot.store(Box::new(Counted(Arc::clone(&drops))), &mut w);
        slot.store(Box::new(Counted(Arc::clone(&drops))), &mut w);
        assert_eq!(w.try_reclaim(), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropped_handles_unregister_themselves() {
        let (mut w, registry) = new();
        let slot = Slot::empty();
        let reader = registry.register();
        slot.store(Box::new(1u64), &mut w);
        let guard = reader.pin();
        slot.store(Box::new(2u64), &mut w);
        assert_eq!(w.try_reclaim(), 0);
        drop(guard);
        drop(reader);
        assert_eq!(w.try_reclaim(), 1, "a dead handle cannot pin anything");
    }

    #[test]
    fn nested_guards_keep_the_outer_pin() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut w, registry) = new();
        let slot = Slot::empty();
        let reader = registry.register();
        slot.store(Box::new(Counted(Arc::clone(&drops))), &mut w);
        let outer = reader.pin();
        let held = slot.load(&outer).expect("stored");
        slot.store(Box::new(Counted(Arc::clone(&drops))), &mut w);
        {
            let inner = reader.pin();
            let _ = slot.load(&inner);
            // Dropping the inner guard must not unpin the outer one.
        }
        assert_eq!(w.try_reclaim(), 0, "outer guard still pins the epoch");
        assert_eq!(held.0.load(Ordering::SeqCst), 0);
        drop(outer);
        assert_eq!(w.try_reclaim(), 1);
    }

    #[test]
    fn writer_drop_frees_outstanding_garbage() {
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut w, registry) = new();
        let slot = Slot::empty();
        let reader = registry.register();
        slot.store(Box::new(Counted(Arc::clone(&drops))), &mut w);
        slot.store(Box::new(Counted(Arc::clone(&drops))), &mut w);
        let _ = reader; // keep registered
        drop(w); // one retired value still in garbage
        drop(slot); // current value freed by the slot
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_readers_never_observe_freed_memory() {
        // Stress: one writer replacing values, many readers validating a
        // self-consistency stamp. Under address-sanitizer-free CI this
        // still catches gross reclamation bugs via the stamp invariant.
        let (mut w, registry) = new();
        let slot = Arc::new(Slot::empty());
        slot.store(Box::new((0u64, 0u64)), &mut w);
        let stop = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for _ in 0..4 {
            let slot = Arc::clone(&slot);
            let registry = registry.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let reader = registry.register();
                let mut last = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let guard = reader.pin();
                    let &(a, b) = slot.load(&guard).expect("never emptied");
                    assert_eq!(a, b, "torn or reclaimed value observed");
                    assert!(a >= last, "values move forward");
                    last = a;
                }
            }));
        }
        for i in 1..=10_000u64 {
            slot.store(Box::new((i, i)), &mut w);
            if i % 64 == 0 {
                w.try_reclaim();
            }
        }
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().expect("reader panicked");
        }
        w.try_reclaim();
        assert!(w.garbage_len() <= 1, "reclamation keeps up once unpinned");
    }
}
