//! Negative controls: the verification machinery must *fail* on broken
//! protocols and forged histories. A checker that never rejects proves
//! nothing — these tests pin down its teeth.

use twobit::baselines::NaiveProcess;
use twobit::core::TwoBitProcess;
use twobit::lincheck::{swmr, wg};
use twobit::simnet::{ClientPlan, DelayModel, PlannedOp, SimBuilder};
use twobit::{History, OpId, OpOutcome, Operation, ProcessId, SystemConfig};

const DELTA: u64 = 1_000;

/// The naive register (quorum writes, *local* reads) must produce a
/// non-atomic history under at least one schedule: a reader adjacent to a
/// fast link sees the new value while a reader behind a slow link later
/// reads the old one.
#[test]
fn naive_register_violates_atomicity_under_some_schedule() {
    let n = 4;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let mut violations = 0usize;
    let mut runs = 0usize;
    for seed in 0..200u64 {
        let mut sim = SimBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Spiky {
                lo: 10,
                hi: DELTA / 2,
                spike_ppm: 400_000,
                spike_lo: 4 * DELTA,
                spike_hi: 10 * DELTA,
            })
            .check_every(0)
            .build(|id| NaiveProcess::new(id, cfg, writer, 0u64));
        sim.client_plan(
            0,
            ClientPlan::new((1..=5u64).map(|v| PlannedOp::after(DELTA, Operation::Write(v)))),
        );
        // Readers poll at staggered offsets — the recipe for observing a
        // new/old inversion on local reads.
        for r in 1..n {
            sim.client_plan(
                r,
                ClientPlan::new(
                    (0..8).map(|_| {
                        PlannedOp::after(DELTA / 2 + r as u64 * 137, Operation::<u64>::Read)
                    }),
                )
                .starting_at(r as u64 * 211),
            );
        }
        let report = sim.run().expect("sim itself must not fail");
        runs += 1;
        if swmr::check(&report.history).is_err() {
            // Cross-validate with the independent Wing–Gong checker.
            assert!(
                wg::check_register(&report.history).is_err(),
                "checkers disagree on seed {seed}"
            );
            violations += 1;
        }
    }
    assert!(
        violations > 0,
        "naive register never caught in {runs} runs — the checker has no teeth"
    );
}

/// Same workload, same adversarial schedule family — the *real* algorithm
/// stays atomic on every seed where the naive one fails.
#[test]
fn twobit_survives_the_schedules_that_break_naive() {
    let n = 4;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    for seed in 0..50u64 {
        let mut sim = SimBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Spiky {
                lo: 10,
                hi: DELTA / 2,
                spike_ppm: 400_000,
                spike_lo: 4 * DELTA,
                spike_hi: 10 * DELTA,
            })
            .check_every(0)
            .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
        sim.client_plan(
            0,
            ClientPlan::new((1..=5u64).map(|v| PlannedOp::after(DELTA, Operation::Write(v)))),
        );
        for r in 1..n {
            sim.client_plan(
                r,
                ClientPlan::new(
                    (0..8).map(|_| {
                        PlannedOp::after(DELTA / 2 + r as u64 * 137, Operation::<u64>::Read)
                    }),
                )
                .starting_at(r as u64 * 211),
            );
        }
        let report = sim.run().expect("sim failed");
        assert!(report.all_live_ops_completed());
        twobit::lincheck::check_swmr(&report.history)
            .unwrap_or_else(|e| panic!("two-bit broke on seed {seed}: {e}"));
    }
}

fn rec(
    op_id: u64,
    proc: usize,
    op: Operation<u64>,
    inv: u64,
    resp: Option<(u64, OpOutcome<u64>)>,
) -> twobit::proto::OpRecord<u64> {
    twobit::proto::OpRecord {
        op_id: OpId::new(op_id),
        proc: ProcessId::new(proc),
        op,
        invoked_at: inv,
        completed: resp,
    }
}

/// Forged histories with known defects are rejected with the right verdict.
#[test]
fn forged_histories_rejected_with_precise_verdicts() {
    // Stale read.
    let h = History {
        initial: 0u64,
        records: vec![
            rec(0, 0, Operation::Write(1), 0, Some((10, OpOutcome::Written))),
            rec(
                1,
                1,
                Operation::Read,
                20,
                Some((30, OpOutcome::ReadValue(0))),
            ),
        ],
    };
    assert!(matches!(
        swmr::check(&h),
        Err(swmr::AtomicityViolation::StaleRead { .. })
    ));
    assert!(wg::check_register(&h).is_err());

    // Read from the future.
    let h = History {
        initial: 0u64,
        records: vec![
            rec(0, 1, Operation::Read, 0, Some((5, OpOutcome::ReadValue(9)))),
            rec(
                1,
                0,
                Operation::Write(9),
                50,
                Some((60, OpOutcome::Written)),
            ),
        ],
    };
    assert!(matches!(
        swmr::check(&h),
        Err(swmr::AtomicityViolation::ReadFromFuture { .. })
    ));
    assert!(wg::check_register(&h).is_err());

    // New/old inversion.
    let h = History {
        initial: 0u64,
        records: vec![
            rec(
                0,
                0,
                Operation::Write(1),
                0,
                Some((100, OpOutcome::Written)),
            ),
            rec(
                1,
                1,
                Operation::Read,
                10,
                Some((20, OpOutcome::ReadValue(1))),
            ),
            rec(
                2,
                2,
                Operation::Read,
                30,
                Some((40, OpOutcome::ReadValue(0))),
            ),
        ],
    };
    assert!(matches!(
        swmr::check(&h),
        Err(swmr::AtomicityViolation::NewOldInversion { .. })
    ));
    assert!(wg::check_register(&h).is_err());
}

/// The simulator's protocol-error detection: an automaton that completes an
/// operation twice (or one it never received) aborts the run loudly instead
/// of producing garbage measurements.
#[test]
fn simulator_rejects_protocol_misbehaviour() {
    use twobit::proto::{Automaton, Effects, MessageCost, WireMessage};

    #[derive(Clone, Debug)]
    struct NopMsg;
    impl WireMessage for NopMsg {
        fn kind(&self) -> &'static str {
            "NOP"
        }
        fn cost(&self) -> MessageCost {
            MessageCost::new(1, 0)
        }
    }

    #[derive(Debug)]
    struct DoubleCompleter {
        id: ProcessId,
        cfg: SystemConfig,
    }
    impl Automaton for DoubleCompleter {
        type Value = u64;
        type Msg = NopMsg;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn on_invoke(&mut self, op_id: OpId, _op: Operation<u64>, fx: &mut Effects<NopMsg, u64>) {
            fx.complete_write(op_id);
            fx.complete_write(op_id); // bug: double completion
        }
        fn on_message(&mut self, _f: ProcessId, _m: NopMsg, _fx: &mut Effects<NopMsg, u64>) {}
        fn state_bits(&self) -> u64 {
            0
        }
    }

    let cfg = SystemConfig::new(3, 1).unwrap();
    let mut sim = SimBuilder::new(cfg).build(|id| DoubleCompleter { id, cfg });
    sim.client_plan(0, ClientPlan::ops([Operation::Write(1u64)]));
    let err = sim.run().expect_err("double completion must abort");
    assert!(err.to_string().contains("completed twice"), "{err}");
}
