//! Negative controls: the verification machinery must *fail* on broken
//! protocols and forged histories. A checker that never rejects proves
//! nothing — these tests pin down its teeth.

use twobit::baselines::NaiveProcess;
use twobit::core::TwoBitProcess;
use twobit::lincheck::{check_mwmr, check_mwmr_sharded, mwmr, swmr, wg};
use twobit::proto::ShardedHistory;
use twobit::simnet::{ClientPlan, DelayModel, PlannedOp, SimBuilder};
use twobit::{History, OpId, OpOutcome, Operation, ProcessId, RegisterId, SystemConfig};

const DELTA: u64 = 1_000;

/// The naive register (quorum writes, *local* reads) must produce a
/// non-atomic history under at least one schedule: a reader adjacent to a
/// fast link sees the new value while a reader behind a slow link later
/// reads the old one.
#[test]
fn naive_register_violates_atomicity_under_some_schedule() {
    let n = 4;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let mut violations = 0usize;
    let mut runs = 0usize;
    for seed in 0..200u64 {
        let mut sim = SimBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Spiky {
                lo: 10,
                hi: DELTA / 2,
                spike_ppm: 400_000,
                spike_lo: 4 * DELTA,
                spike_hi: 10 * DELTA,
            })
            .check_every(0)
            .build(|id| NaiveProcess::new(id, cfg, writer, 0u64));
        sim.client_plan(
            0,
            ClientPlan::new((1..=5u64).map(|v| PlannedOp::after(DELTA, Operation::Write(v)))),
        );
        // Readers poll at staggered offsets — the recipe for observing a
        // new/old inversion on local reads.
        for r in 1..n {
            sim.client_plan(
                r,
                ClientPlan::new(
                    (0..8).map(|_| {
                        PlannedOp::after(DELTA / 2 + r as u64 * 137, Operation::<u64>::Read)
                    }),
                )
                .starting_at(r as u64 * 211),
            );
        }
        let report = sim.run().expect("sim itself must not fail");
        runs += 1;
        if swmr::check(&report.history).is_err() {
            // Cross-validate with the independent Wing–Gong checker.
            assert!(
                wg::check_register(&report.history).is_err(),
                "checkers disagree on seed {seed}"
            );
            violations += 1;
        }
    }
    assert!(
        violations > 0,
        "naive register never caught in {runs} runs — the checker has no teeth"
    );
}

/// Same workload, same adversarial schedule family — the *real* algorithm
/// stays atomic on every seed where the naive one fails.
#[test]
fn twobit_survives_the_schedules_that_break_naive() {
    let n = 4;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    for seed in 0..50u64 {
        let mut sim = SimBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Spiky {
                lo: 10,
                hi: DELTA / 2,
                spike_ppm: 400_000,
                spike_lo: 4 * DELTA,
                spike_hi: 10 * DELTA,
            })
            .check_every(0)
            .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
        sim.client_plan(
            0,
            ClientPlan::new((1..=5u64).map(|v| PlannedOp::after(DELTA, Operation::Write(v)))),
        );
        for r in 1..n {
            sim.client_plan(
                r,
                ClientPlan::new(
                    (0..8).map(|_| {
                        PlannedOp::after(DELTA / 2 + r as u64 * 137, Operation::<u64>::Read)
                    }),
                )
                .starting_at(r as u64 * 211),
            );
        }
        let report = sim.run().expect("sim failed");
        assert!(report.all_live_ops_completed());
        twobit::lincheck::check_swmr(&report.history)
            .unwrap_or_else(|e| panic!("two-bit broke on seed {seed}: {e}"));
    }
}

fn rec(
    op_id: u64,
    proc: usize,
    op: Operation<u64>,
    inv: u64,
    resp: Option<(u64, OpOutcome<u64>)>,
) -> twobit::proto::OpRecord<u64> {
    twobit::proto::OpRecord {
        op_id: OpId::new(op_id),
        proc: ProcessId::new(proc),
        op,
        invoked_at: inv,
        completed: resp,
    }
}

/// Forged histories with known defects are rejected with the right verdict.
#[test]
fn forged_histories_rejected_with_precise_verdicts() {
    // Stale read.
    let h = History {
        initial: 0u64,
        recoveries: vec![],
        records: vec![
            rec(0, 0, Operation::Write(1), 0, Some((10, OpOutcome::Written))),
            rec(
                1,
                1,
                Operation::Read,
                20,
                Some((30, OpOutcome::ReadValue(0))),
            ),
        ],
    };
    assert!(matches!(
        swmr::check(&h),
        Err(swmr::AtomicityViolation::StaleRead { .. })
    ));
    assert!(wg::check_register(&h).is_err());

    // Read from the future.
    let h = History {
        initial: 0u64,
        recoveries: vec![],
        records: vec![
            rec(0, 1, Operation::Read, 0, Some((5, OpOutcome::ReadValue(9)))),
            rec(
                1,
                0,
                Operation::Write(9),
                50,
                Some((60, OpOutcome::Written)),
            ),
        ],
    };
    assert!(matches!(
        swmr::check(&h),
        Err(swmr::AtomicityViolation::ReadFromFuture { .. })
    ));
    assert!(wg::check_register(&h).is_err());

    // New/old inversion.
    let h = History {
        initial: 0u64,
        recoveries: vec![],
        records: vec![
            rec(
                0,
                0,
                Operation::Write(1),
                0,
                Some((100, OpOutcome::Written)),
            ),
            rec(
                1,
                1,
                Operation::Read,
                10,
                Some((20, OpOutcome::ReadValue(1))),
            ),
            rec(
                2,
                2,
                Operation::Read,
                30,
                Some((40, OpOutcome::ReadValue(0))),
            ),
        ],
    };
    assert!(matches!(
        swmr::check(&h),
        Err(swmr::AtomicityViolation::NewOldInversion { .. })
    ));
    assert!(wg::check_register(&h).is_err());
}

/// The MWMR checker's teeth: a hand-seeded non-linearizable multi-writer
/// history — two concurrent writes observed in **opposite orders** by two
/// readers — must be rejected, and the rejection must pinpoint both the
/// offending register (`ShardedViolation`) and the two contradictory
/// writes (`OrderCycle`). The independent Wing–Gong search agrees.
#[test]
fn forged_mwmr_history_rejected_with_pinpointed_cycle() {
    // w(1) by p0 and w(2) by p1 overlap for the whole window [0, 100].
    // Reader p2 sees 1 then 2; reader p3 sees 2 then 1. Each reader's two
    // reads are non-overlapping, so both observation orders are forced —
    // and they contradict: no write order can satisfy w1 < w2 and w2 < w1.
    let records = vec![
        rec(
            0,
            0,
            Operation::Write(1),
            0,
            Some((100, OpOutcome::Written)),
        ),
        rec(
            1,
            1,
            Operation::Write(2),
            0,
            Some((100, OpOutcome::Written)),
        ),
        rec(
            2,
            2,
            Operation::Read,
            10,
            Some((20, OpOutcome::ReadValue(1))),
        ),
        rec(
            3,
            2,
            Operation::Read,
            30,
            Some((40, OpOutcome::ReadValue(2))),
        ),
        rec(
            4,
            3,
            Operation::Read,
            10,
            Some((20, OpOutcome::ReadValue(2))),
        ),
        rec(
            5,
            3,
            Operation::Read,
            30,
            Some((40, OpOutcome::ReadValue(1))),
        ),
    ];
    let h = History {
        initial: 0u64,
        recoveries: vec![],
        records: records.clone(),
    };

    // Flat check: the cycle names exactly the two contradictory writes.
    let err = check_mwmr(&h).expect_err("opposite observation orders cannot linearize");
    let mwmr::MwmrViolation::OrderCycle { writes } = &err else {
        panic!("expected OrderCycle, got {err}");
    };
    let mut cycle = writes.clone();
    cycle.sort();
    assert_eq!(cycle, vec![OpId::new(0), OpId::new(1)]);

    // Ground truth agrees the history is not linearizable.
    assert!(wg::check_register(&h).is_err());

    // Sharded check: the violation is pinpointed to the seeded register
    // while the healthy register passes.
    let good = RegisterId::new(0);
    let bad = RegisterId::new(1);
    let healthy = vec![
        rec(6, 0, Operation::Write(7), 0, Some((10, OpOutcome::Written))),
        rec(
            7,
            2,
            Operation::Read,
            11,
            Some((20, OpOutcome::ReadValue(7))),
        ),
    ];
    let sharded = ShardedHistory::from_tagged(
        0u64,
        [good, bad],
        healthy
            .into_iter()
            .map(|r| (good, r))
            .chain(records.into_iter().map(|r| (bad, r)))
            .collect::<Vec<_>>(),
    );
    let sharded_err = check_mwmr_sharded(&sharded).expect_err("the bad shard must be caught");
    assert_eq!(sharded_err.reg, bad, "violation tagged with its register");
    assert!(
        matches!(
            sharded_err.violation,
            mwmr::MwmrViolation::OrderCycle { .. }
        ),
        "sharded verdict keeps the pinpointed cycle: {sharded_err}"
    );
}

/// Sanity for the negative control above: flipping ONE read so both
/// readers agree on the order makes the same shape linearizable — the
/// rejection really is about the contradiction, not about concurrency.
#[test]
fn mwmr_agreeing_observation_orders_are_accepted() {
    let h = History {
        initial: 0u64,
        recoveries: vec![],
        records: vec![
            rec(
                0,
                0,
                Operation::Write(1),
                0,
                Some((100, OpOutcome::Written)),
            ),
            rec(
                1,
                1,
                Operation::Write(2),
                0,
                Some((100, OpOutcome::Written)),
            ),
            rec(
                2,
                2,
                Operation::Read,
                10,
                Some((20, OpOutcome::ReadValue(1))),
            ),
            rec(
                3,
                2,
                Operation::Read,
                30,
                Some((40, OpOutcome::ReadValue(2))),
            ),
            rec(
                4,
                3,
                Operation::Read,
                10,
                Some((20, OpOutcome::ReadValue(1))),
            ),
            rec(
                5,
                3,
                Operation::Read,
                30,
                Some((40, OpOutcome::ReadValue(2))),
            ),
        ],
    };
    let verdict = check_mwmr(&h).expect("agreeing orders linearize");
    assert_eq!(verdict.write_order, vec![OpId::new(0), OpId::new(1)]);
    wg::check_register(&h).expect("ground truth agrees");
}

/// The model checker's teeth, SWMR: the ablation that skips Fig. 1's
/// second wait (line 9) must be caught by exploration of the bounded
/// `n = 5, t = 2` configuration, and the minimized counterexample must
/// replay *verbatim* (strict — every step fires) to the same new/old
/// inversion on a fresh build.
#[test]
fn model_checker_catches_skipped_read_confirmation() {
    use twobit::check::{explore, scenarios, ExploreOptions};
    use twobit::lincheck::check_sharded_modes;
    use twobit::proto::{ReplayScheduler, Schedule};
    use twobit::Driver;

    let scenario = scenarios::twobit_swmr_no_confirmation_broken();
    // The witness keeps one reader fresh while a quorum stays stale —
    // one deviation from the checker's staleness-first search order.
    let report = explore(
        &scenario,
        &ExploreOptions {
            deviation_bound: Some(1),
            ..ExploreOptions::default()
        },
    )
    .expect("exploration itself must not fail");
    let cx = report.violation.expect("the ablation must be caught");
    assert!(
        cx.reason.contains("new/old inversion"),
        "wrong verdict: {}",
        cx.reason
    );
    // Minimized: the two reads' invoke/respond pairs, the write's invoke,
    // and just the frames that build the two quorums.
    assert!(
        cx.schedule.len() <= 16,
        "counterexample not minimal: {} ({} steps)",
        cx.schedule,
        cx.schedule.len()
    );

    // Round-trip through the string form and replay strictly.
    let parsed: Schedule = cx.schedule.to_string().parse().expect("schedule parses");
    let mut space = scenario.build();
    space
        .run_scheduled(&mut ReplayScheduler::strict(&parsed))
        .expect("a minimized counterexample replays verbatim");
    let err = check_sharded_modes(&space.history(), &scenario.modes)
        .expect_err("the replay reproduces the violation");
    assert!(err.to_string().contains("inversion"), "{err}");
}

/// The model checker's teeth, read cache: removing the writer-co-location
/// gate (`CacheMode::UnsafeAblated`) lets a non-writer serve a blind local
/// read from a stale confirmed entry. Exploration at `n = 3, t = 1` must
/// find the stale read, and the minimized schedule must replay verbatim
/// to the same violation on a fresh build — proving the gate, not luck,
/// is what keeps `CacheMode::Safe` sound.
#[test]
fn model_checker_catches_gate_ablated_read_cache() {
    use twobit::check::{explore, scenarios, ExploreOptions};
    use twobit::lincheck::check_sharded_modes;
    use twobit::proto::{ReplayScheduler, Schedule};
    use twobit::Driver;

    let scenario = scenarios::twobit_swmr_cache_ablated_broken();
    let report = explore(&scenario, &ExploreOptions::default()).expect("exploration runs");
    let cx = report.violation.expect("the ablated cache must be caught");
    assert!(
        cx.reason.contains("overwritten") || cx.reason.contains("inversion"),
        "wrong verdict: {}",
        cx.reason
    );

    let parsed: Schedule = cx.schedule.to_string().parse().expect("schedule parses");
    let mut space = scenario.build();
    space
        .run_scheduled(&mut ReplayScheduler::strict(&parsed))
        .expect("a minimized counterexample replays verbatim");
    let err = check_sharded_modes(&space.history(), &scenario.modes)
        .expect_err("the replay reproduces the violation");
    assert!(
        err.to_string().contains("overwritten") || err.to_string().contains("inversion"),
        "{err}"
    );
    // The replayed run really served the poisoned read from the cache.
    assert!(
        space.stats().cache_hits() >= 1,
        "the counterexample must go through the cache hit path"
    );
}

/// The model checker's teeth, Oh-RAM: ablating the server-relay half
/// round (readers return the maximum over any quorum of direct acks,
/// uniformity not demanded) must be caught by exploration at `n = 3,
/// t = 1`. The witness is a new/old inversion: `p1`'s overlapping read
/// returns the in-flight `1` off a lone fresh ack while a quorum still
/// holds `0`, and `p2`'s strictly-later read returns `0`. The minimized
/// counterexample must round-trip through its string form and replay
/// *verbatim* (strict — every step fires) to the same violation,
/// proving the relay round — not luck — is what makes the fast read
/// atomic.
#[test]
fn model_checker_catches_ablated_ohram_relay() {
    use twobit::check::{explore, scenarios, ExploreOptions};
    use twobit::lincheck::check_sharded_modes;
    use twobit::proto::{ReplayScheduler, Schedule};
    use twobit::Driver;

    let scenario = scenarios::ohram_no_relay_broken();
    let report = explore(&scenario, &ExploreOptions::default()).expect("exploration runs");
    let cx = report.violation.expect("the relay ablation must be caught");
    assert!(
        cx.reason.contains("inversion"),
        "wrong verdict: {}",
        cx.reason
    );
    // Minimized: the write's invoke, both reads' invoke/respond pairs,
    // and just the handful of acks that build the fresh singleton and
    // the stale quorum.
    assert!(
        cx.schedule.len() <= 16,
        "counterexample not minimal: {} ({} steps)",
        cx.schedule,
        cx.schedule.len()
    );

    // Round-trip through the string form and replay strictly.
    let parsed: Schedule = cx.schedule.to_string().parse().expect("schedule parses");
    let mut space = scenario.build();
    space
        .run_scheduled(&mut ReplayScheduler::strict(&parsed))
        .expect("a minimized counterexample replays verbatim");
    let err = check_sharded_modes(&space.history(), &scenario.modes)
        .expect_err("the replay reproduces the violation");
    assert!(err.to_string().contains("inversion"), "{err}");
}

/// The model checker's teeth, MWMR: a replica that acknowledges update
/// messages without absorbing them lets a write "complete" on a stale
/// quorum — plain DPOR exploration at `n = 3, t = 1` must find the stale
/// read within a handful of paths, and the minimized schedule replays.
#[test]
fn model_checker_catches_stale_write_acks() {
    use twobit::check::{explore, scenarios, ExploreOptions};
    use twobit::lincheck::check_sharded_modes;
    use twobit::proto::{ReplayScheduler, Schedule};
    use twobit::Driver;

    let scenario = scenarios::mwmr_stale_acks_broken();
    let report = explore(&scenario, &ExploreOptions::default()).expect("exploration runs");
    let cx = report.violation.expect("stale acks must be caught");
    assert!(
        cx.reason.contains("initial value"),
        "wrong verdict: {}",
        cx.reason
    );
    assert!(
        report.stats.paths_explored < 100,
        "the bug hides in plain sight — finding it must not take {} paths",
        report.stats.paths_explored
    );

    let parsed: Schedule = cx.schedule.to_string().parse().expect("schedule parses");
    let mut space = scenario.build();
    space
        .run_scheduled(&mut ReplayScheduler::strict(&parsed))
        .expect("a minimized counterexample replays verbatim");
    check_sharded_modes(&space.history(), &scenario.modes)
        .expect_err("the replay reproduces the violation");
}

/// The model checker's teeth, crash-recovery: a rejoin that skips the
/// incarnation bump (and with it the stale-frame fence) lets a frame sent
/// between live peers *before* the crash be counted *after* the rejoin
/// barrier reset its sender — the writer completes on a phantom quorum
/// and a post-write read returns the overwritten value. Bounded
/// exploration of `n = 3, t = 1` with one crash and one recovery must
/// find it, and the minimized counterexample must contain the recovery
/// step and replay verbatim to the same violation.
#[test]
fn model_checker_catches_rejoin_without_incarnation_bump() {
    use twobit::check::{explore, scenarios, ExploreOptions};
    use twobit::lincheck::check_sharded_modes;
    use twobit::proto::{ReplayScheduler, Schedule, ScheduleStep};
    use twobit::Driver;

    let scenario = scenarios::twobit_swmr_recover_no_fence_broken();
    let report = explore(&scenario, &ExploreOptions::default()).expect("exploration runs");
    let cx = report
        .violation
        .expect("the fenceless rejoin must be caught");
    assert!(
        cx.reason.contains("linearizability"),
        "wrong verdict: {}",
        cx.reason
    );
    // A 1-minimal witness needs both writes, the crash, the rejoin, the
    // read, and only the frames that build the phantom quorum around
    // them — about seventeen steps; anything much longer means the
    // minimizer stopped shrinking.
    assert!(
        cx.schedule.len() <= 20,
        "counterexample not minimal: {} ({} steps)",
        cx.schedule,
        cx.schedule.len()
    );
    assert!(
        cx.schedule
            .steps()
            .iter()
            .any(|s| matches!(s, ScheduleStep::Recover(_))),
        "the witness must go through a recovery: {}",
        cx.schedule
    );

    // Round-trip through the string form and replay strictly.
    let parsed: Schedule = cx.schedule.to_string().parse().expect("schedule parses");
    let mut space = scenario.build();
    space
        .run_scheduled(&mut ReplayScheduler::strict(&parsed))
        .expect("a minimized counterexample replays verbatim");
    check_sharded_modes(&space.history(), &scenario.modes)
        .expect_err("the replay reproduces the violation");

    // Sanity for the control pair: the identical configuration with the
    // fence intact was exhausted violation-free by the checker's own
    // tests, so the bump is exactly what the witness exploits.
}

/// The simulator's protocol-error detection: an automaton that completes an
/// operation twice (or one it never received) aborts the run loudly instead
/// of producing garbage measurements.
#[test]
fn simulator_rejects_protocol_misbehaviour() {
    use twobit::proto::{Automaton, Effects, MessageCost, WireMessage};

    #[derive(Clone, Debug)]
    struct NopMsg;
    impl WireMessage for NopMsg {
        fn kind(&self) -> &'static str {
            "NOP"
        }
        fn cost(&self) -> MessageCost {
            MessageCost::new(1, 0)
        }
    }

    #[derive(Debug)]
    struct DoubleCompleter {
        id: ProcessId,
        cfg: SystemConfig,
    }
    impl Automaton for DoubleCompleter {
        type Value = u64;
        type Msg = NopMsg;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn on_invoke(&mut self, op_id: OpId, _op: Operation<u64>, fx: &mut Effects<NopMsg, u64>) {
            fx.complete_write(op_id);
            fx.complete_write(op_id); // bug: double completion
        }
        fn on_message(&mut self, _f: ProcessId, _m: NopMsg, _fx: &mut Effects<NopMsg, u64>) {}
        fn state_bits(&self) -> u64 {
            0
        }
    }

    let cfg = SystemConfig::new(3, 1).unwrap();
    let mut sim = SimBuilder::new(cfg).build(|id| DoubleCompleter { id, cfg });
    sim.client_plan(0, ClientPlan::ops([Operation::Write(1u64)]));
    let err = sim.run().expect_err("double completion must abort");
    assert!(err.to_string().contains("completed twice"), "{err}");
}
