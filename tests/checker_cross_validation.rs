//! Property-based cross-validation of the two linearizability checkers.
//!
//! The specialized SWMR checker implements the three claims of the paper's
//! Lemma 10 as a decision procedure; the Wing–Gong search is ground truth
//! by construction. On randomly generated small single-writer histories the
//! two must agree *exactly* — any disagreement is a bug in the fast
//! checker's theory or code. proptest shrinks disagreements to minimal
//! counterexamples.

use proptest::prelude::*;
use twobit::lincheck::{swmr, wg};
use twobit::proto::OpRecord;
use twobit::{History, OpId, OpOutcome, Operation, ProcessId};

/// A randomly placed read: interval plus the index of the value it claims
/// to have seen (0 = initial value).
#[derive(Clone, Debug)]
struct ArbRead {
    proc: usize,
    start: u64,
    len: u64,
    value_idx: usize,
}

fn arb_reads(max_writes: usize) -> impl Strategy<Value = Vec<ArbRead>> {
    prop::collection::vec(
        (1usize..4, 0u64..80, 1u64..25, 0usize..=max_writes).prop_map(
            |(proc, start, len, value_idx)| ArbRead {
                proc,
                start,
                len,
                value_idx,
            },
        ),
        0..6,
    )
}

/// Builds a single-writer history: `writes` sequential writes of values
/// 1..=writes at intervals [20k, 20k+10] (the last possibly pending), plus
/// arbitrary reads.
fn build_history(writes: usize, last_pending: bool, reads: &[ArbRead]) -> History<u64> {
    let mut records = Vec::new();
    let mut op = 0u64;
    for k in 0..writes {
        let inv = 20 * k as u64;
        let pending = last_pending && k == writes - 1;
        records.push(OpRecord {
            op_id: OpId::new(op),
            proc: ProcessId::new(0),
            op: Operation::Write(k as u64 + 1),
            invoked_at: inv,
            completed: if pending {
                None
            } else {
                Some((inv + 10, OpOutcome::Written))
            },
        });
        op += 1;
    }
    for r in reads {
        records.push(OpRecord {
            op_id: OpId::new(op),
            proc: ProcessId::new(r.proc),
            op: Operation::Read,
            invoked_at: r.start,
            completed: Some((r.start + r.len, OpOutcome::ReadValue(r.value_idx as u64))),
        });
        op += 1;
    }
    History {
        initial: 0,
        records,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The fast checker and the WG search agree on every random history.
    #[test]
    fn checkers_agree(
        writes in 0usize..4,
        last_pending in any::<bool>(),
        reads in arb_reads(3),
    ) {
        // Clamp read indices to the actual write count (the strategy allows
        // up to 3; values above `writes` become unknown-value reads, which
        // both checkers must reject).
        let h = build_history(writes, last_pending && writes > 0, &reads);
        let fast = swmr::check(&h);
        let ground = wg::check_register(&h);
        prop_assert_eq!(
            fast.is_ok(),
            ground.is_ok(),
            "disagreement: fast={:?} wg={:?} history={:?}",
            fast, ground, h
        );
    }

    /// Reads that overlap nothing and return the latest completed write are
    /// always accepted (sanity direction: the generator above is mostly
    /// negative; this one is all-positive).
    #[test]
    fn sequential_correct_histories_always_pass(
        writes in 1usize..5,
        gap in 1u64..10,
    ) {
        let mut records = Vec::new();
        let mut t = 0u64;
        let mut op = 0u64;
        for k in 0..writes {
            records.push(OpRecord {
                op_id: OpId::new(op),
                proc: ProcessId::new(0),
                op: Operation::Write(k as u64 + 1),
                invoked_at: t,
                completed: Some((t + gap, OpOutcome::Written)),
            });
            t += 2 * gap;
            op += 1;
            records.push(OpRecord {
                op_id: OpId::new(op),
                proc: ProcessId::new(1),
                op: Operation::Read,
                invoked_at: t,
                completed: Some((t + gap, OpOutcome::ReadValue(k as u64 + 1))),
            });
            t += 2 * gap;
            op += 1;
        }
        let h = History { initial: 0u64, records };
        prop_assert!(swmr::check(&h).is_ok());
        prop_assert!(wg::check_register(&h).is_ok());
    }
}

/// Deterministic regression cases distilled from early development.
#[test]
fn regression_touching_intervals() {
    // Write responds exactly when a read of the initial value begins:
    // legal (linearization points may coincide in timestamp).
    let h = build_history(
        1,
        false,
        &[ArbRead {
            proc: 1,
            start: 10,
            len: 5,
            value_idx: 0,
        }],
    );
    assert!(swmr::check(&h).is_ok());
    assert!(wg::check_register(&h).is_ok());
}

#[test]
fn regression_pending_write_read_before_invocation() {
    // A read that ends before a pending write was even invoked cannot see
    // its value.
    let h = build_history(
        2,
        true,
        &[ArbRead {
            proc: 1,
            start: 0,
            len: 5,
            value_idx: 2,
        }],
    );
    assert!(swmr::check(&h).is_err());
    assert!(wg::check_register(&h).is_err());
}
