//! Property-based cross-validation of the two linearizability checkers.
//!
//! The specialized SWMR checker implements the three claims of the paper's
//! Lemma 10 as a decision procedure; the Wing–Gong search is ground truth
//! by construction. On randomly generated small single-writer histories the
//! two must agree *exactly* — any disagreement is a bug in the fast
//! checker's theory or code. proptest shrinks disagreements to minimal
//! counterexamples.

use std::collections::BTreeMap;

use proptest::prelude::*;
use twobit::lincheck::{check_sharded_modes, mwmr, swmr, wg};
use twobit::proto::OpRecord;
use twobit::{
    Driver, History, MixedProcess, OpId, OpOutcome, Operation, ProcessId, RegisterId, RegisterMode,
    SystemConfig,
};

/// A randomly placed read: interval plus the index of the value it claims
/// to have seen (0 = initial value).
#[derive(Clone, Debug)]
struct ArbRead {
    proc: usize,
    start: u64,
    len: u64,
    value_idx: usize,
}

fn arb_reads(max_writes: usize) -> impl Strategy<Value = Vec<ArbRead>> {
    prop::collection::vec(
        (1usize..4, 0u64..80, 1u64..25, 0usize..=max_writes).prop_map(
            |(proc, start, len, value_idx)| ArbRead {
                proc,
                start,
                len,
                value_idx,
            },
        ),
        0..6,
    )
}

/// Builds a single-writer history: `writes` sequential writes of values
/// 1..=writes at intervals [20k, 20k+10] (the last possibly pending), plus
/// arbitrary reads.
fn build_history(writes: usize, last_pending: bool, reads: &[ArbRead]) -> History<u64> {
    let mut records = Vec::new();
    let mut op = 0u64;
    for k in 0..writes {
        let inv = 20 * k as u64;
        let pending = last_pending && k == writes - 1;
        records.push(OpRecord {
            op_id: OpId::new(op),
            proc: ProcessId::new(0),
            op: Operation::Write(k as u64 + 1),
            invoked_at: inv,
            completed: if pending {
                None
            } else {
                Some((inv + 10, OpOutcome::Written))
            },
        });
        op += 1;
    }
    for r in reads {
        records.push(OpRecord {
            op_id: OpId::new(op),
            proc: ProcessId::new(r.proc),
            op: Operation::Read,
            invoked_at: r.start,
            completed: Some((r.start + r.len, OpOutcome::ReadValue(r.value_idx as u64))),
        });
        op += 1;
    }
    History {
        initial: 0,
        records,
        recoveries: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The fast checker and the WG search agree on every random history.
    #[test]
    fn checkers_agree(
        writes in 0usize..4,
        last_pending in any::<bool>(),
        reads in arb_reads(3),
    ) {
        // Clamp read indices to the actual write count (the strategy allows
        // up to 3; values above `writes` become unknown-value reads, which
        // both checkers must reject).
        let h = build_history(writes, last_pending && writes > 0, &reads);
        let fast = swmr::check(&h);
        let ground = wg::check_register(&h);
        prop_assert_eq!(
            fast.is_ok(),
            ground.is_ok(),
            "disagreement: fast={:?} wg={:?} history={:?}",
            fast, ground, h
        );
    }

    /// Reads that overlap nothing and return the latest completed write are
    /// always accepted (sanity direction: the generator above is mostly
    /// negative; this one is all-positive).
    #[test]
    fn sequential_correct_histories_always_pass(
        writes in 1usize..5,
        gap in 1u64..10,
    ) {
        let mut records = Vec::new();
        let mut t = 0u64;
        let mut op = 0u64;
        for k in 0..writes {
            records.push(OpRecord {
                op_id: OpId::new(op),
                proc: ProcessId::new(0),
                op: Operation::Write(k as u64 + 1),
                invoked_at: t,
                completed: Some((t + gap, OpOutcome::Written)),
            });
            t += 2 * gap;
            op += 1;
            records.push(OpRecord {
                op_id: OpId::new(op),
                proc: ProcessId::new(1),
                op: Operation::Read,
                invoked_at: t,
                completed: Some((t + gap, OpOutcome::ReadValue(k as u64 + 1))),
            });
            t += 2 * gap;
            op += 1;
        }
        let h = History { initial: 0u64, records, recoveries: vec![] };
        prop_assert!(swmr::check(&h).is_ok());
        prop_assert!(wg::check_register(&h).is_ok());
    }
}

/// A randomly placed multi-writer write: invoking process, interval, and
/// whether it completed.
#[derive(Clone, Debug)]
struct ArbWrite {
    proc: usize,
    start: u64,
    len: u64,
    pending: bool,
}

fn arb_writes() -> impl Strategy<Value = Vec<ArbWrite>> {
    prop::collection::vec(
        (0usize..3, 0u64..80, 1u64..30, any::<bool>()).prop_map(|(proc, start, len, pending)| {
            ArbWrite {
                proc,
                start,
                len,
                pending,
            }
        }),
        0..4,
    )
}

/// Builds a multi-writer history: arbitrary (possibly overlapping,
/// possibly pending) writes of values 1..=k from several processes, plus
/// arbitrary reads claiming any value index.
fn build_mwmr_history(writes: &[ArbWrite], reads: &[ArbRead]) -> History<u64> {
    let mut records = Vec::new();
    let mut op = 0u64;
    for (k, w) in writes.iter().enumerate() {
        records.push(OpRecord {
            op_id: OpId::new(op),
            proc: ProcessId::new(w.proc),
            op: Operation::Write(k as u64 + 1),
            invoked_at: w.start,
            completed: if w.pending {
                None
            } else {
                Some((w.start + w.len, OpOutcome::Written))
            },
        });
        op += 1;
    }
    for r in reads {
        records.push(OpRecord {
            op_id: OpId::new(op),
            proc: ProcessId::new(r.proc + 3), // readers distinct from writers
            op: Operation::Read,
            invoked_at: r.start,
            completed: Some((r.start + r.len, OpOutcome::ReadValue(r.value_idx as u64))),
        });
        op += 1;
    }
    History {
        initial: 0,
        records,
        recoveries: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The MWMR timestamp-order checker and the WG search agree on every
    /// random multi-writer history — concurrent writes, pending writes,
    /// stale/future/inverted reads, the lot. Any disagreement is a bug in
    /// the constraint-graph theory or its code.
    #[test]
    fn mwmr_checker_agrees_with_wg(
        writes in arb_writes(),
        reads in arb_reads(3),
    ) {
        let h = build_mwmr_history(&writes, &reads);
        let fast = mwmr::check(&h);
        let ground = wg::check_register(&h);
        prop_assert_eq!(
            fast.is_ok(),
            ground.is_ok(),
            "disagreement: mwmr={:?} wg={:?} history={:?}",
            fast, ground, h
        );
    }

    /// On single-writer histories the three checkers agree pairwise: the
    /// MWMR procedure is a strict generalization of the SWMR one.
    #[test]
    fn mwmr_checker_subsumes_swmr_on_single_writer_histories(
        writes in 0usize..4,
        last_pending in any::<bool>(),
        reads in arb_reads(3),
    ) {
        let h = build_history(writes, last_pending && writes > 0, &reads);
        let multi = mwmr::check(&h);
        let single = swmr::check(&h);
        prop_assert_eq!(
            multi.is_ok(),
            single.is_ok(),
            "disagreement: mwmr={:?} swmr={:?} history={:?}",
            multi, single, h
        );
    }
}

proptest! {
    // Whole-simulation cases are heavier than bare history checks.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixed SWMR/MWMR register layouts × random crash schedules on
    /// the deterministic sharded simulator always produce histories the
    /// per-register checker dispatch accepts: protocol correctness and the
    /// checker's positive direction, exercised together over the framed,
    /// codec-on message path.
    #[test]
    fn mixed_layouts_with_crashes_pass_the_mode_dispatch(
        seed in any::<u64>(),
        mode_bits in prop::collection::vec(0u8..3, 1..5),
        crash_victims in prop::collection::vec(0usize..5, 0..3),
        crash_after in 0usize..10,
        rounds in 1usize..3,
    ) {
        const N: usize = 5;
        let cfg = SystemConfig::max_resilience(N); // t = 2
        let modes: Vec<RegisterMode> = mode_bits
            .iter()
            .map(|&b| match b {
                0 => RegisterMode::Swmr,
                1 => RegisterMode::Mwmr,
                _ => RegisterMode::OhRam,
            })
            .collect();
        let writer_of = |reg: RegisterId| ProcessId::new(reg.index() % N);
        let mut sim = twobit::SpaceBuilder::new(cfg)
            .seed(seed)
            .registers(modes.len())
            .wire_codec(true)
            .build(0u64, |reg, id| {
                MixedProcess::for_mode(modes[reg.index()], id, cfg, writer_of(reg), 0u64)
            });

        // Crash at most t processes, at a random point of the schedule.
        let mut victims: Vec<usize> = crash_victims;
        victims.sort_unstable();
        victims.dedup();
        victims.truncate(2);
        let mut crashed = [false; N];

        let mut value = 0u64;
        let mut step = 0usize;
        for _round in 0..rounds {
            for (k, mode) in modes.iter().enumerate() {
                let reg = RegisterId::new(k);
                if step == crash_after {
                    for &v in &victims {
                        sim.crash(ProcessId::new(v)).unwrap();
                        crashed[v] = true;
                    }
                }
                step += 1;
                // Writers: the register's single writer, or (MWMR) two
                // concurrent writers.
                let writer_procs: Vec<usize> = match mode {
                    RegisterMode::Swmr | RegisterMode::OhRam => vec![writer_of(reg).index()],
                    RegisterMode::Mwmr => vec![k % N, (k + 1) % N],
                };
                let mut tickets = Vec::new();
                for p in writer_procs {
                    if crashed[p] {
                        continue;
                    }
                    value += 1;
                    if let Ok(t) = sim.invoke(ProcessId::new(p), reg, Operation::Write(value)) {
                        tickets.push(t);
                    }
                }
                let reader = (k + 3) % N;
                if !crashed[reader] {
                    if let Ok(t) = sim.invoke(ProcessId::new(reader), reg, Operation::Read) {
                        tickets.push(t);
                    }
                }
                for t in &tickets {
                    // Live processes complete (a quorum survives any ≤ t
                    // crash schedule); ops cut down mid-flight by their own
                    // process's crash may legitimately stall.
                    let _ = sim.poll(t);
                }
            }
        }
        sim.run_to_quiescence().expect("simulation stays healthy");

        let modes_map: BTreeMap<RegisterId, RegisterMode> = modes
            .iter()
            .enumerate()
            .map(|(k, &m)| (RegisterId::new(k), m))
            .collect();
        let verdicts = check_sharded_modes(&sim.history(), &modes_map)
            .unwrap_or_else(|e| panic!("seed {seed}: dispatch rejected the run: {e}"));
        prop_assert_eq!(verdicts.len(), modes.len());
        // Every register was checked by the checker its mode demands.
        for (reg, verdict) in &verdicts {
            let expect_mwmr = modes[reg.index()] == RegisterMode::Mwmr;
            prop_assert_eq!(
                matches!(verdict, twobit::lincheck::RegisterVerdict::Mwmr(_)),
                expect_mwmr,
                "register {} routed to the wrong checker", reg
            );
        }
    }
}

/// Deterministic regression cases distilled from early development.
#[test]
fn regression_touching_intervals() {
    // Write responds exactly when a read of the initial value begins:
    // legal (linearization points may coincide in timestamp).
    let h = build_history(
        1,
        false,
        &[ArbRead {
            proc: 1,
            start: 10,
            len: 5,
            value_idx: 0,
        }],
    );
    assert!(swmr::check(&h).is_ok());
    assert!(wg::check_register(&h).is_ok());
}

#[test]
fn regression_pending_write_read_before_invocation() {
    // A read that ends before a pending write was even invoked cannot see
    // its value.
    let h = build_history(
        2,
        true,
        &[ArbRead {
            proc: 1,
            start: 0,
            len: 5,
            value_idx: 2,
        }],
    );
    assert!(swmr::check(&h).is_err());
    assert!(wg::check_register(&h).is_err());
}
