//! A `RegisterSpace` hosting 64 independent named registers on a 5-process
//! live cluster: every register runs the paper's protocol with its own
//! writer, operations pipeline across shards, and every per-register
//! history must pass the atomicity checker.

use twobit::lincheck::{check_sharded_modes, check_swmr, check_swmr_sharded, RegisterVerdict};
use twobit::proto::Driver;
use twobit::{
    ClusterBuilder, MixedProcess, Operation, ProcessId, RegisterId, RegisterMode, RegisterSpace,
    SystemConfig, TwoBitProcess,
};

const N: usize = 5;
const REGISTERS: usize = 64;

fn build_space() -> RegisterSpace<twobit::Cluster<TwoBitProcess<u64>>> {
    let cfg = SystemConfig::max_resilience(N);
    let cluster = ClusterBuilder::new(cfg)
        .seed(64)
        .registers(REGISTERS)
        // Register rk's writer is process k mod n.
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        })
        .unwrap();
    let names: Vec<String> = (0..REGISTERS).map(|k| format!("key:{k:02}")).collect();
    RegisterSpace::new(cluster, names).unwrap()
}

#[test]
fn sixty_four_registers_on_five_processes_stay_atomic() {
    let mut space = build_space();
    assert_eq!(space.len(), REGISTERS);

    // Three rounds of writes + reads on every register.
    for round in 0..3u64 {
        for k in 0..REGISTERS {
            let name = format!("key:{k:02}");
            let writer = k % N;
            space
                .write(writer, &name, 1_000 * (k as u64 + 1) + round)
                .unwrap();
            let got = space.read((writer + 1) % N, &name).unwrap();
            assert_eq!(got, 1_000 * (k as u64 + 1) + round);
        }
    }

    // Per-register atomicity over the whole run.
    let sharded = Driver::history(space.driver());
    assert_eq!(sharded.len(), REGISTERS);
    let verdicts = check_swmr_sharded(&sharded).unwrap();
    assert_eq!(verdicts.len(), REGISTERS);
    for verdict in verdicts.values() {
        assert_eq!(verdict.writes, 3);
        assert_eq!(verdict.reads_checked, 3);
    }

    // Wire accounting: per-shard sends sum to the aggregate, every message
    // still carries 2 control bits, and the 64-register shard tag is 6 bits
    // per message unframed-equivalent — while on the wire the messages
    // travelled in frames with shared headers.
    let stats = space.driver().stats();
    let shard_sent: u64 = stats.shards().map(|(_, t)| t.sent).sum();
    assert_eq!(shard_sent, stats.total_sent());
    assert_eq!(stats.max_msg_control_bits(), 2);
    assert_eq!(stats.routing_bits(), 6 * stats.total_sent());
    assert!(stats.frames_sent() > 0, "the cluster's links speak frames");
    assert!(stats.frame_header_bits() > 0);
}

#[test]
fn named_registers_pipeline_across_shards() {
    let mut space = build_space();

    // p0 writes its 13 registers (r0, r5, r10, ...) all at once: issue
    // every ticket before waiting on any.
    let mine: Vec<String> = (0..REGISTERS)
        .filter(|k| k % N == 0)
        .map(|k| format!("key:{k:02}"))
        .collect();
    let tickets: Vec<_> = mine
        .iter()
        .map(|name| {
            space
                .issue(0, name, Operation::Write(7))
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .collect();
    // A second op on a busy pair is refused while the first is in flight —
    // sequential per register, pipelined across registers.
    for t in &tickets {
        space.wait(t).unwrap();
    }
    for name in &mine {
        assert_eq!(space.read(1, name).unwrap(), 7);
        check_swmr(&space.history_of(name).unwrap()).unwrap();
    }

    // Unknown names are typed errors.
    assert!(space.read(0, "no-such-key").is_err());
}

/// A mixed space on the live cluster: one SWMR register (the paper's
/// protocol) and one MWMR register (ABD timestamps) behind named bindings.
/// Every process may write the MWMR register — three writers issue
/// *concurrently* through the space, each holding its own per-writer
/// in-flight slot — and verification dispatches per declared mode.
#[test]
fn mixed_space_declares_and_verifies_multi_writer_registers() {
    let cfg = SystemConfig::max_resilience(N);
    let layout = [RegisterMode::Swmr, RegisterMode::Mwmr];
    let cluster = ClusterBuilder::new(cfg)
        .seed(77)
        .registers(layout.len())
        .wire_codec(true)
        .build_sharded(0u64, |reg, id| {
            MixedProcess::for_mode(layout[reg.index()], id, cfg, ProcessId::new(0), 0u64)
        })
        .unwrap();
    let mut space = RegisterSpace::new_with_modes(
        cluster,
        [
            ("flags", RegisterMode::Swmr),
            ("counter", RegisterMode::Mwmr),
        ],
    )
    .unwrap();

    // The modes API reflects the declaration.
    assert_eq!(space.mode("flags"), Some(RegisterMode::Swmr));
    assert_eq!(space.mode("counter"), Some(RegisterMode::Mwmr));
    assert_eq!(space.mode("no-such-key"), None);
    assert_eq!(space.mode_of(RegisterId::new(1)), RegisterMode::Mwmr);
    // Undeclared ids default to SWMR, the conservative checker.
    assert_eq!(space.mode_of(RegisterId::new(9)), RegisterMode::Swmr);
    assert_eq!(space.modes().len(), 2);

    // SWMR register: only p0 writes.
    space.write(0, "flags", 7).unwrap();
    assert_eq!(space.read(1, "flags").unwrap(), 7);

    // MWMR register: three different processes write concurrently — each
    // (process, register) pair has its own in-flight slot, so none of
    // these is an OperationInFlight error.
    let t1 = space.issue(1, "counter", Operation::Write(10)).unwrap();
    let t2 = space.issue(2, "counter", Operation::Write(20)).unwrap();
    let t3 = space.issue(3, "counter", Operation::Write(30)).unwrap();
    // The same writer double-issuing IS still refused: sequentiality is
    // lifted per register only across writers, never within one.
    assert!(space.issue(1, "counter", Operation::Write(99)).is_err());
    for t in [t1, t2, t3] {
        space.wait(&t).unwrap();
    }
    let got = space.read(4, "counter").unwrap();
    assert!(
        [10, 20, 30].contains(&got),
        "freshest write wins, got {got}"
    );

    // Verification dispatches on the declared mode, per register.
    let verdicts = check_sharded_modes(&space.histories(), space.modes()).unwrap();
    assert!(matches!(
        verdicts[&RegisterId::new(0)],
        RegisterVerdict::Swmr(_)
    ));
    let RegisterVerdict::Mwmr(mwmr) = &verdicts[&RegisterId::new(1)] else {
        panic!("counter must be checked as MWMR");
    };
    assert_eq!(mwmr.writes, 3);
    assert_eq!(mwmr.write_order.len(), 3, "concurrency fully resolved");
}
