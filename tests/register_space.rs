//! A `RegisterSpace` hosting 64 independent named registers on a 5-process
//! live cluster: every register runs the paper's protocol with its own
//! writer, operations pipeline across shards, and every per-register
//! history must pass the atomicity checker.

use twobit::lincheck::{check_swmr, check_swmr_sharded};
use twobit::proto::Driver;
use twobit::{ClusterBuilder, Operation, ProcessId, RegisterSpace, SystemConfig, TwoBitProcess};

const N: usize = 5;
const REGISTERS: usize = 64;

fn build_space() -> RegisterSpace<twobit::Cluster<TwoBitProcess<u64>>> {
    let cfg = SystemConfig::max_resilience(N);
    let cluster = ClusterBuilder::new(cfg)
        .seed(64)
        .registers(REGISTERS)
        // Register rk's writer is process k mod n.
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        })
        .unwrap();
    let names: Vec<String> = (0..REGISTERS).map(|k| format!("key:{k:02}")).collect();
    RegisterSpace::new(cluster, names).unwrap()
}

#[test]
fn sixty_four_registers_on_five_processes_stay_atomic() {
    let mut space = build_space();
    assert_eq!(space.len(), REGISTERS);

    // Three rounds of writes + reads on every register.
    for round in 0..3u64 {
        for k in 0..REGISTERS {
            let name = format!("key:{k:02}");
            let writer = k % N;
            space
                .write(writer, &name, 1_000 * (k as u64 + 1) + round)
                .unwrap();
            let got = space.read((writer + 1) % N, &name).unwrap();
            assert_eq!(got, 1_000 * (k as u64 + 1) + round);
        }
    }

    // Per-register atomicity over the whole run.
    let sharded = Driver::history(space.driver());
    assert_eq!(sharded.len(), REGISTERS);
    let verdicts = check_swmr_sharded(&sharded).unwrap();
    assert_eq!(verdicts.len(), REGISTERS);
    for verdict in verdicts.values() {
        assert_eq!(verdict.writes, 3);
        assert_eq!(verdict.reads_checked, 3);
    }

    // Wire accounting: per-shard sends sum to the aggregate, every message
    // still carries 2 control bits, and the 64-register shard tag is 6 bits
    // per message unframed-equivalent — while on the wire the messages
    // travelled in frames with shared headers.
    let stats = space.driver().stats();
    let shard_sent: u64 = stats.shards().map(|(_, t)| t.sent).sum();
    assert_eq!(shard_sent, stats.total_sent());
    assert_eq!(stats.max_msg_control_bits(), 2);
    assert_eq!(stats.routing_bits(), 6 * stats.total_sent());
    assert!(stats.frames_sent() > 0, "the cluster's links speak frames");
    assert!(stats.frame_header_bits() > 0);
}

#[test]
fn named_registers_pipeline_across_shards() {
    let mut space = build_space();

    // p0 writes its 13 registers (r0, r5, r10, ...) all at once: issue
    // every ticket before waiting on any.
    let mine: Vec<String> = (0..REGISTERS)
        .filter(|k| k % N == 0)
        .map(|k| format!("key:{k:02}"))
        .collect();
    let tickets: Vec<_> = mine
        .iter()
        .map(|name| {
            space
                .issue(0, name, Operation::Write(7))
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .collect();
    // A second op on a busy pair is refused while the first is in flight —
    // sequential per register, pipelined across registers.
    for t in &tickets {
        space.wait(t).unwrap();
    }
    for name in &mine {
        assert_eq!(space.read(1, name).unwrap(), 7);
        check_swmr(&space.history_of(name).unwrap()).unwrap();
    }

    // Unknown names are typed errors.
    assert!(space.read(0, "no-such-key").is_err());
}
