//! What Fig. 1's second read wait (line 9) buys: atomicity vs regularity.
//!
//! The paper's read runs two phases: a `READ`/`PROCEED` quorum (lines 6–7)
//! and then a *confirmation* wait (line 9) that `n−t` processes are known to
//! hold the value about to be returned. Claim 2's proof only needs phase 1;
//! it is Claim 3 — **no new/old inversion** — that needs line 9. Ablating
//! the confirmation yields a register that is still *regular* (every read
//! returns the last completed or a concurrent write's value) but can lose
//! atomicity.
//!
//! A sharper fact these tests pin down empirically: the ablated register
//! only breaks when **t ≥ 2**. With t = 1, any `PROCEED` quorum (`n−t`
//! processes counting the reader) must include either the writer or the
//! earlier reader of the value — both of which already hold it, so their
//! line-20 guard (`w_sync_q[r] ≥ sn_q ≥ x`) plus Lemma 2
//! (`w_sync_r[r] ≥ w_sync_q[r]`) force the later reader to catch up before
//! proceeding. Inversion needs `n−t−1` ignorant responders besides the
//! reader, and at least two processes (writer + earlier reader) always
//! know — hence `t ≥ 2`.

use twobit::core::{TwoBitOptions, TwoBitProcess};
use twobit::lincheck::{check_swmr, check_swmr_regular};
use twobit::simnet::{ClientPlan, DelayModel, PlannedOp, SimBuilder, SimReport};
use twobit::{Operation, ProcessId, SystemConfig};

const DELTA: u64 = 1_000;

fn adversarial_run(n: usize, seed: u64, confirm: bool) -> SimReport<TwoBitProcess<u64>> {
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let opts = TwoBitOptions {
        read_confirmation: confirm,
        ..TwoBitOptions::default()
    };
    let mut sim = SimBuilder::new(cfg)
        .seed(seed)
        .delay(DelayModel::Spiky {
            lo: 10,
            hi: DELTA / 2,
            spike_ppm: 400_000,
            spike_lo: 4 * DELTA,
            spike_hi: 12 * DELTA,
        })
        .check_every(0)
        .build(|id| TwoBitProcess::with_options(id, cfg, writer, 0u64, opts));
    sim.client_plan(
        0,
        ClientPlan::new((1..=6u64).map(|v| PlannedOp::after(DELTA, Operation::Write(v)))),
    );
    for r in 1..n {
        sim.client_plan(
            r,
            ClientPlan::new(
                (0..10).map(|_| PlannedOp::after(DELTA / 3 + r as u64 * 119, Operation::Read)),
            )
            .starting_at(r as u64 * 173),
        );
    }
    let report = sim.run().expect("sim failed");
    assert!(
        report.all_live_ops_completed(),
        "liveness must not depend on line 9"
    );
    report
}

/// t = 2 (n = 5), confirmation off: still regular on *every* schedule, but
/// atomicity breaks on some — and only via new/old inversions.
#[test]
fn ablated_read_is_regular_but_not_atomic_when_t_is_2() {
    let mut atomic_violations = 0usize;
    for seed in 0..300u64 {
        let report = adversarial_run(5, seed, false);
        // Regularity must hold unconditionally (Claims 1–2 survive the
        // ablation).
        check_swmr_regular(&report.history)
            .unwrap_or_else(|e| panic!("ablated read lost regularity on seed {seed}: {e}"));
        if let Err(e) = check_swmr(&report.history) {
            // Only inversions may appear.
            assert!(
                matches!(
                    e,
                    twobit::lincheck::AtomicityViolation::NewOldInversion { .. }
                ),
                "unexpected violation kind on seed {seed}: {e}"
            );
            atomic_violations += 1;
        }
    }
    assert!(
        atomic_violations > 0,
        "no inversion found in 300 adversarial runs — the ablation test has no power"
    );
}

/// t = 1 (n = 4), confirmation off: atomicity holds *anyway* — quorum
/// overlap with the ≥ 2 processes that always know a previously-read value
/// (writer + earlier reader) makes line 9 redundant at this resilience.
#[test]
fn ablated_read_stays_atomic_when_t_is_1() {
    for seed in 0..200u64 {
        let report = adversarial_run(4, seed, false);
        check_swmr(&report.history).unwrap_or_else(|e| {
            panic!("t=1 ablation unexpectedly broke atomicity on seed {seed}: {e}")
        });
    }
}

/// The full algorithm (line 9 active) is atomic on the exact schedule
/// family that breaks the t = 2 ablation.
#[test]
fn full_read_is_atomic_on_the_same_schedules() {
    for seed in 0..300u64 {
        let report = adversarial_run(5, seed, true);
        check_swmr(&report.history)
            .unwrap_or_else(|e| panic!("full algorithm broke on seed {seed}: {e}"));
    }
}
