//! Simulator-level semantics of the `Up → Crashed → Recovering → Up`
//! lifecycle: end-to-end rejoin in event mode, the eager stale-frame fence
//! in scheduled mode, per-incarnation message accounting, the typed
//! refusal paths, and the guarantee that merely *enabling* recovery
//! changes nothing about a crash-free run.

use twobit::lincheck::check_swmr_sharded;
use twobit::proto::ScheduleStep;
use twobit::{
    Driver, DriverError, MwmrProcess, Operation, ProcessId, RegisterId, SpaceBuilder, SystemConfig,
    TwoBitProcess,
};

fn cfg3() -> SystemConfig {
    SystemConfig::new(3, 1).unwrap()
}

const R0: RegisterId = RegisterId::ZERO;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Event-mode crash → recover → serve, with the books audited per
/// incarnation: a replica that rejoined from a quorum snapshot answers
/// reads with post-crash state on every register, the run stays atomic,
/// and `delivered + dropped + stale == sent` holds over the summed
/// ledgers with exactly one ledger per incarnation epoch.
#[test]
fn event_mode_rejoin_serves_and_reconciles_per_incarnation() {
    let cfg = cfg3();
    let r1 = RegisterId::new(1);
    let mut sim = SpaceBuilder::new(cfg)
        .seed(5)
        .registers(2)
        .recovery(true)
        .wire_codec(true)
        .build(0u64, |_reg, id| TwoBitProcess::new(id, cfg, p(0), 0u64));

    sim.write(p(0), R0, 1).unwrap();
    sim.write(p(0), r1, 10).unwrap();
    sim.crash(p(2)).unwrap();
    sim.write(p(0), R0, 2).unwrap();

    sim.recover(p(2)).unwrap();
    assert_eq!(sim.incarnation(p(2)), 1, "rejoin bumps the incarnation");
    // The rejoined replica participates in quorums again and has adopted
    // state it never saw delivered: the write issued while it was down.
    assert_eq!(sim.read(p(2), R0).unwrap(), 2);
    assert_eq!(sim.read(p(2), r1).unwrap(), 10);

    sim.run_to_quiescence().unwrap();
    let stats = sim.stats();
    assert_eq!(stats.recoveries(), 1);
    assert!(
        stats.snapshot_frames() >= 2,
        "one snapshot per register crossed as a frame (got {})",
        stats.snapshot_frames()
    );
    assert_eq!(
        stats.total_delivered() + stats.dropped_to_crashed() + stats.dropped_stale(),
        stats.total_sent(),
        "delivered + dropped + stale == sent"
    );
    let ledgers = stats.incarnation_ledgers();
    assert_eq!(ledgers.len(), 2, "one ledger per incarnation epoch");
    let sum = |f: fn(&twobit::proto::IncarnationLedger) -> u64| ledgers.iter().map(f).sum::<u64>();
    assert_eq!(sum(|l| l.sent), stats.total_sent());
    assert_eq!(sum(|l| l.delivered), stats.total_delivered());
    assert_eq!(sum(|l| l.dropped_to_crashed), stats.dropped_to_crashed());
    assert_eq!(sum(|l| l.dropped_stale), stats.dropped_stale());

    let hist = sim.history();
    check_swmr_sharded(&hist).unwrap();
    for (reg, shard) in hist.iter() {
        assert_eq!(shard.recoveries.len(), 1, "{reg}: the rejoin is recorded");
        assert_eq!(shard.recoveries[0].proc, p(2));
        assert_eq!(shard.recoveries[0].incarnation, 1);
    }
}

/// Scheduled-mode incarnation fence: frames the crashed writer left in
/// flight are purged as stale at its recovery (they were staged under the
/// dead incarnation and would be rejected at delivery anyway), and the
/// purge is visible in the accounting without breaking reconciliation.
#[test]
fn scheduled_recovery_fences_in_flight_frames_as_stale() {
    let cfg = cfg3();
    let mut sim = SpaceBuilder::new(cfg)
        .seed(1)
        .registers(1)
        .scheduled(true)
        .recovery(true)
        .build(0u64, |_reg, id| TwoBitProcess::new(id, cfg, p(0), 0u64));
    sim.plan_op(p(0), R0, Operation::Write(1));

    // Invoke the write: WRITE frames to both peers are now in flight.
    sim.fire(ScheduleStep::Invoke(0)).unwrap();
    let in_flight = sim.stats().total_sent();
    assert!(in_flight > 0, "the invocation staged frames");
    // The writer crashes with those frames still undelivered, then rejoins.
    sim.fire(ScheduleStep::Crash(p(0))).unwrap();
    sim.fire(ScheduleStep::Recover(p(0))).unwrap();

    assert_eq!(sim.incarnation(p(0)), 1);
    let stats = sim.stats();
    assert!(
        stats.dropped_stale() > 0,
        "the dead incarnation's frames were fenced"
    );
    assert_eq!(
        stats.total_delivered() + stats.dropped_to_crashed() + stats.dropped_stale(),
        stats.total_sent(),
        "the fence keeps the books balanced"
    );
}

/// Recovery is opt-in on the simulator: without `SpaceBuilder::recovery`
/// the `Recover` path is a typed refusal, not a silent no-op.
#[test]
fn recovery_disabled_space_refuses_recover() {
    let cfg = cfg3();
    let mut sim = SpaceBuilder::new(cfg)
        .seed(1)
        .registers(1)
        .build(0u64, |_reg, id| TwoBitProcess::new(id, cfg, p(0), 0u64));
    sim.crash(p(2)).unwrap();
    match sim.recover(p(2)) {
        Err(DriverError::Backend(msg)) => {
            assert!(msg.contains("recovery"), "useful refusal, got: {msg}");
        }
        other => panic!("expected a Backend refusal, got {other:?}"),
    }
}

/// An automaton that does not implement `recovery_snapshot` cannot be
/// rejoined — the attempt is a typed `RecoveryUnsupported`, and the failed
/// recovery leaves the process crashed rather than half-revived.
#[test]
fn automaton_without_snapshot_support_is_recovery_unsupported() {
    let cfg = cfg3();
    let mut sim = SpaceBuilder::new(cfg)
        .seed(1)
        .registers(1)
        .recovery(true)
        .build(0u64, |_reg, id| MwmrProcess::new(id, cfg, 0u64));
    sim.write(p(0), R0, 1).unwrap();
    sim.crash(p(2)).unwrap();
    assert!(matches!(
        sim.recover(p(2)),
        Err(DriverError::RecoveryUnsupported)
    ));
    assert!(sim.is_crashed(p(2)), "a failed recovery does not revive");
    // The surviving majority is unaffected.
    assert_eq!(sim.read(p(1), R0).unwrap(), 1);
}

/// Enabling recovery must cost nothing when nobody crashes: a crash-free
/// run with `.recovery(true)` is byte-for-byte identical — same wire
/// bytes, same message counts, same history — to its recovery-disabled
/// twin. (The bench suite holds the live-backend analogue to within 2%.)
#[test]
fn recovery_knob_is_free_on_crash_free_runs() {
    let cfg = cfg3();
    let run = |recovery: bool| {
        let mut sim = SpaceBuilder::new(cfg)
            .seed(7)
            .registers(2)
            .recovery(recovery)
            .wire_codec(true)
            .build(0u64, |_reg, id| TwoBitProcess::new(id, cfg, p(0), 0u64));
        for round in 1..=4u64 {
            sim.write(p(0), R0, round).unwrap();
            sim.write(p(0), RegisterId::new(1), 10 + round).unwrap();
            assert_eq!(sim.read(p(round as usize % 3), R0).unwrap(), round);
        }
        sim.run_to_quiescence().unwrap();
        let stats = sim.stats();
        (
            stats.wire_bytes(),
            stats.total_sent(),
            stats.total_delivered(),
            stats.frames_sent(),
            sim.history(),
        )
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with.0, without.0, "wire bytes");
    assert_eq!(with.1, without.1, "messages sent");
    assert_eq!(with.2, without.2, "messages delivered");
    assert_eq!(with.3, without.3, "frames");
    assert_eq!(with.4, without.4, "histories");
}
