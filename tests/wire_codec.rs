//! Byte-level wire codec properties: every message type of the workspace —
//! the paper's protocol and all baselines — round-trips through
//! `encode_into`/`decode` bit-exactly, frames round-trip through
//! `Frame::encode`/`Frame::decode` as one length-prefixed blob, and the
//! encoded sizes reconcile with the `FrameCost`/`NetStats` accounting: for
//! the paper's automaton the bits on the wire ARE the accounted bits, with
//! exactly two control bits per message.

use proptest::prelude::*;
use twobit::baselines::abd::AbdMsg;
use twobit::baselines::mwmr::{MwmrMsg, Timestamp};
use twobit::baselines::naive::NaiveMsg;
use twobit::baselines::ohram::OhRamMsg;
use twobit::baselines::phased::{Padded, PhasedMsg};
use twobit::core::msg::{Parity, TwoBitMsg};
use twobit::proto::bits::{BitReader, BitWriter, WireError};
use twobit::proto::{Envelope, Frame, MessageCost, RegisterId, WireMessage};
use twobit::ProcessId;

/// Encode one message, check the declared bit size is exact, decode it
/// back, check the cursor landed exactly at the end.
fn roundtrip_msg<M: WireMessage + PartialEq>(msg: &M) {
    let mut w = BitWriter::new();
    msg.encode_into(&mut w).unwrap();
    assert_eq!(
        w.bit_len(),
        msg.encoded_bits(),
        "{msg:?}: encoded_bits must be the exact wire size"
    );
    let bytes = w.into_bytes();
    let mut r = BitReader::new(&bytes);
    let back = M::decode(&mut r).unwrap();
    assert_eq!(&back, msg, "decode(encode(m)) == m");
    assert_eq!(r.bits_read(), msg.encoded_bits(), "no trailing slack");
}

/// Frame-level round trip plus blob-size reconciliation.
fn roundtrip_frame<M: WireMessage + PartialEq>(envs: Vec<Envelope<M>>, space: usize) {
    let frame = Frame::from_envelopes(envs);
    let blob = frame.encode().unwrap();
    assert_eq!(Frame::<M>::decode(&blob).unwrap(), frame);
    // The blob is the 4-byte length prefix plus the body, and the body's
    // bit length is exactly header bits + Σ per-message encoded bits.
    let body_bits = frame.encoded_bits();
    assert_eq!(blob.len() as u64, 4 + body_bits.div_ceil(8));
    let cost = frame.cost(RegisterId::routing_bits(space));
    // The header chooser never loses to forced delta/gamma.
    assert!(cost.header_bits <= cost.header_gamma_bits);
    // Control and data accounting are byte-transport-independent.
    let (mut control, mut data) = (0, 0);
    for (_, m) in frame.iter() {
        let c = m.cost();
        control += c.control_bits;
        data += c.data_bits;
    }
    assert_eq!(cost.control_bits, control);
    assert_eq!(cost.data_bits, data);
}

// Strategies. Gamma codes need headroom for the +1 offsets, so counters
// stay below 2^50 (far above anything a run produces).
const MAX_CTR: u64 = 1 << 50;

fn twobit_msg() -> impl Strategy<Value = TwoBitMsg<u64>> {
    prop_oneof![
        (any::<bool>(), any::<u64>())
            .prop_map(|(p, v)| TwoBitMsg::Write(if p { Parity::Odd } else { Parity::Even }, v)),
        Just(TwoBitMsg::Read),
        Just(TwoBitMsg::Proceed),
    ]
}

fn abd_msg() -> impl Strategy<Value = AbdMsg<u64>> {
    prop_oneof![
        (0..MAX_CTR, any::<u64>()).prop_map(|(seq, value)| AbdMsg::Write { seq, value }),
        (0..MAX_CTR).prop_map(|seq| AbdMsg::WriteAck { seq }),
        (0..MAX_CTR).prop_map(|rid| AbdMsg::ReadQuery { rid }),
        (0..MAX_CTR, 0..MAX_CTR, any::<u64>()).prop_map(|(rid, seq, value)| AbdMsg::ReadReply {
            rid,
            seq,
            value
        }),
        (0..MAX_CTR, 0..MAX_CTR, any::<u64>()).prop_map(|(rid, seq, value)| AbdMsg::WriteBack {
            rid,
            seq,
            value
        }),
        (0..MAX_CTR).prop_map(|rid| AbdMsg::WriteBackAck { rid }),
    ]
}

fn phased_msg() -> impl Strategy<Value = PhasedMsg<u64>> {
    prop_oneof![
        (0..MAX_CTR, 0..MAX_CTR, any::<u64>()).prop_map(|(rid, seq, value)| PhasedMsg::Value {
            rid,
            seq,
            value
        }),
        (0..MAX_CTR).prop_map(|rid| PhasedMsg::ValueAck { rid }),
        (0..MAX_CTR).prop_map(|rid| PhasedMsg::Query { rid }),
        (0..MAX_CTR, 0..MAX_CTR, any::<u64>())
            .prop_map(|(rid, seq, value)| PhasedMsg::QueryReply { rid, seq, value }),
        (0..MAX_CTR).prop_map(|rid| PhasedMsg::Sync { rid }),
        (0..MAX_CTR).prop_map(|rid| PhasedMsg::SyncAck { rid }),
        (0..MAX_CTR).prop_map(|rid| PhasedMsg::EchoReq { rid }),
        (0..MAX_CTR, 0usize..1024).prop_map(|(rid, origin)| PhasedMsg::EchoRelay {
            rid,
            origin: ProcessId::new(origin),
        }),
    ]
}

fn timestamp() -> impl Strategy<Value = Timestamp> {
    (0..MAX_CTR, 0u32..1024).prop_map(|(num, pid)| Timestamp { num, pid })
}

fn mwmr_msg() -> impl Strategy<Value = MwmrMsg<u64>> {
    prop_oneof![
        (0..MAX_CTR).prop_map(|rid| MwmrMsg::Query { rid }),
        (0..MAX_CTR, timestamp(), any::<u64>()).prop_map(|(rid, ts, value)| MwmrMsg::QueryReply {
            rid,
            ts,
            value
        }),
        (0..MAX_CTR, timestamp(), any::<u64>()).prop_map(|(rid, ts, value)| MwmrMsg::Update {
            rid,
            ts,
            value
        }),
        (0..MAX_CTR).prop_map(|rid| MwmrMsg::UpdateAck { rid }),
    ]
}

fn ohram_msg() -> impl Strategy<Value = OhRamMsg<u64>> {
    prop_oneof![
        (0..MAX_CTR, any::<u64>()).prop_map(|(seq, value)| OhRamMsg::Write { seq, value }),
        (0..MAX_CTR).prop_map(|seq| OhRamMsg::WriteAck { seq }),
        (0..MAX_CTR).prop_map(|rid| OhRamMsg::Read { rid }),
        (0..MAX_CTR, 0..MAX_CTR, any::<u64>()).prop_map(|(rid, ts, value)| OhRamMsg::ReadAck {
            rid,
            ts,
            value
        }),
        (0u32..1024, 0..MAX_CTR, 0..MAX_CTR, any::<u64>()).prop_map(|(reader, rid, ts, value)| {
            OhRamMsg::Relay {
                reader,
                rid,
                ts,
                value,
            }
        }),
        (0..MAX_CTR, 0..MAX_CTR, any::<u64>()).prop_map(|(rid, ts, value)| OhRamMsg::RelayAck {
            rid,
            ts,
            value
        }),
    ]
}

fn naive_msg() -> impl Strategy<Value = NaiveMsg<u64>> {
    prop_oneof![
        (0..MAX_CTR, any::<u64>()).prop_map(|(seq, value)| NaiveMsg::Store { seq, value }),
        (0..MAX_CTR).prop_map(|seq| NaiveMsg::StoreAck { seq }),
    ]
}

proptest! {
    /// The paper's protocol: round trip, and the wire encoding IS the
    /// modeled cost — exactly two control bits per message, on real bits.
    #[test]
    fn twobit_messages_roundtrip_with_two_wire_control_bits(msg in twobit_msg()) {
        roundtrip_msg(&msg);
        let c = msg.cost();
        prop_assert_eq!(c.control_bits, 2);
        prop_assert_eq!(msg.encoded_bits(), c.control_bits + c.data_bits);
    }

    /// ABD baseline: round trip; gamma-coded counters make the wire size at
    /// least the modeled control bits (self-delimiting costs real bits).
    #[test]
    fn abd_messages_roundtrip(msg in abd_msg()) {
        roundtrip_msg(&msg);
        let c = msg.cost();
        prop_assert!(msg.encoded_bits() >= c.control_bits + c.data_bits - 2);
    }

    /// Phased-engine messages round-trip.
    #[test]
    fn phased_messages_roundtrip(msg in phased_msg()) {
        roundtrip_msg(&msg);
    }

    /// Padded (emulated-baseline) messages put their modeled control
    /// budget on the wire as real bits: round trip preserves the message
    /// and the effective control cost.
    #[test]
    fn padded_messages_carry_their_modeled_budget(
        msg in phased_msg(),
        budget in 0u64..4096,
    ) {
        let padded = Padded { inner: msg, control_bits: budget };
        let mut w = BitWriter::new();
        padded.encode_into(&mut w).unwrap();
        prop_assert_eq!(w.bit_len(), padded.encoded_bits());
        // The wire actually carries at least the modeled control budget.
        prop_assert!(padded.encoded_bits() >= budget);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let back = Padded::<u64>::decode(&mut r).unwrap();
        prop_assert_eq!(&back.inner, &padded.inner);
        // Decoding normalizes the stamp to the effective budget — the
        // quantity `cost()` reports either way.
        prop_assert_eq!(back.cost(), padded.cost());
    }

    /// MWMR baseline: round trip.
    #[test]
    fn mwmr_messages_roundtrip(msg in mwmr_msg()) {
        roundtrip_msg(&msg);
    }

    /// Naive baseline: round trip.
    #[test]
    fn naive_messages_roundtrip(msg in naive_msg()) {
        roundtrip_msg(&msg);
    }

    /// Whole frames of protocol messages round-trip as one length-prefixed
    /// blob, for arbitrary register multisets, and the blob length
    /// reconciles exactly with the frame's accounted bits.
    #[test]
    fn twobit_frames_roundtrip_and_reconcile(
        envs in prop::collection::vec((0usize..256, twobit_msg()), 0..64),
        space_pow in 0u32..9,
    ) {
        let envs: Vec<Envelope<TwoBitMsg<u64>>> = envs
            .into_iter()
            .map(|(reg, m)| Envelope::new(RegisterId::new(reg), m))
            .collect();
        let messages = envs.len() as u64;
        let frame = Frame::from_envelopes(envs.clone());
        roundtrip_frame(envs, 1usize << space_pow);

        // Control bits exactly 2 × messages — on the wire, not just in
        // stats: body bits = header + 2·messages + data bits.
        let data: u64 = frame.iter().map(|(_, m)| m.cost().data_bits).sum();
        prop_assert_eq!(
            frame.encoded_bits(),
            frame.header().bits() + 2 * messages + data
        );
    }

    /// Frames of baseline messages round-trip too (sizes differ from the
    /// modeled costs by the gamma self-delimiting overhead, but the blob
    /// always matches `encoded_bits`).
    #[test]
    fn abd_frames_roundtrip(
        envs in prop::collection::vec((0usize..64, abd_msg()), 0..32),
    ) {
        let envs: Vec<Envelope<AbdMsg<u64>>> = envs
            .into_iter()
            .map(|(reg, m)| Envelope::new(RegisterId::new(reg), m))
            .collect();
        roundtrip_frame(envs, 64);
    }

    /// MWMR frames on the register-tagged path: arbitrary multisets of
    /// `MwmrMsg` across registers coalesce into one frame whose blob
    /// reconciles byte-for-byte with `FrameCost` (`roundtrip_frame` checks
    /// `blob.len() == 4 + ⌈(header + Σ encoded_bits)/8⌉` and the
    /// control/data split) and decodes back to the same messages.
    #[test]
    fn mwmr_frames_roundtrip_and_reconcile(
        envs in prop::collection::vec((0usize..64, mwmr_msg()), 0..32),
    ) {
        let envs: Vec<Envelope<MwmrMsg<u64>>> = envs
            .into_iter()
            .map(|(reg, m)| Envelope::new(RegisterId::new(reg), m))
            .collect();
        roundtrip_frame(envs, 64);
    }

    /// Truncation fuzzing at the `Timestamp` boundary: frames of
    /// timestamp-bearing MWMR messages (`Update` / `QueryReply`) are cut
    /// at **every** byte position — including all the cuts landing inside
    /// the gamma-coded ⟨counter, pid⟩ pair — and every cut must surface a
    /// typed decode error, never a panic or a silently shortened frame.
    #[test]
    fn truncated_mwmr_frames_are_typed_errors(
        tagged in prop::collection::vec(
            (0usize..64, 0..MAX_CTR, timestamp(), any::<u64>(), any::<bool>()),
            1..12,
        ),
    ) {
        let envs: Vec<Envelope<MwmrMsg<u64>>> = tagged
            .into_iter()
            .map(|(reg, rid, ts, value, update)| {
                let msg = if update {
                    MwmrMsg::Update { rid, ts, value }
                } else {
                    MwmrMsg::QueryReply { rid, ts, value }
                };
                Envelope::new(RegisterId::new(reg), msg)
            })
            .collect();
        let blob = Frame::from_envelopes(envs).encode().unwrap();
        for cut in 0..blob.len() {
            prop_assert!(
                Frame::<MwmrMsg<u64>>::decode(&blob[..cut]).is_err(),
                "truncation at byte {cut} of {} must fail",
                blob.len()
            );
        }
    }

    /// Every `OhRamMsg` variant round-trips bit-exactly: tag plus
    /// γ-coded fields in, the same message out, cursor landing exactly
    /// at `encoded_bits`.
    #[test]
    fn ohram_messages_roundtrip(msg in ohram_msg()) {
        roundtrip_msg(&msg);
        // The wire carries at least the modeled control budget: the tag
        // and γ-coded counters are control, the 64-bit payload is data.
        let cost = msg.cost();
        prop_assert!(msg.encoded_bits() >= cost.control_bits);
    }

    /// Oh-RAM frames on the register-tagged path: arbitrary multisets of
    /// `OhRamMsg` across registers coalesce into one frame whose blob
    /// reconciles byte-for-byte with `FrameCost` (`roundtrip_frame`
    /// checks `blob.len() == 4 + ⌈(header + Σ encoded_bits)/8⌉` and the
    /// control/data split) and decodes back to the same messages.
    #[test]
    fn ohram_frames_roundtrip_and_reconcile(
        envs in prop::collection::vec((0usize..64, ohram_msg()), 0..32),
    ) {
        let envs: Vec<Envelope<OhRamMsg<u64>>> = envs
            .into_iter()
            .map(|(reg, m)| Envelope::new(RegisterId::new(reg), m))
            .collect();
        roundtrip_frame(envs, 64);
    }

    /// Truncation fuzzing at the γ-coded timestamp boundary: frames of
    /// timestamp-bearing Oh-RAM messages (`ReadAck` / `Relay` /
    /// `RelayAck`, whose `ts` is γ-coded right before the fixed-width
    /// value) are cut at **every** byte position and every cut must
    /// surface a typed decode error, never a panic or a silently
    /// shortened frame.
    #[test]
    fn truncated_ohram_frames_are_typed_errors(
        tagged in prop::collection::vec(
            (0usize..64, 0..MAX_CTR, 0..MAX_CTR, any::<u64>(), 0u8..3),
            1..12,
        ),
    ) {
        let envs: Vec<Envelope<OhRamMsg<u64>>> = tagged
            .into_iter()
            .map(|(reg, rid, ts, value, pick)| {
                let msg = match pick {
                    0 => OhRamMsg::ReadAck { rid, ts, value },
                    1 => OhRamMsg::Relay { reader: (reg % 5) as u32, rid, ts, value },
                    _ => OhRamMsg::RelayAck { rid, ts, value },
                };
                Envelope::new(RegisterId::new(reg), msg)
            })
            .collect();
        let blob = Frame::from_envelopes(envs).encode().unwrap();
        for cut in 0..blob.len() {
            prop_assert!(
                Frame::<OhRamMsg<u64>>::decode(&blob[..cut]).is_err(),
                "truncation at byte {cut} of {} must fail",
                blob.len()
            );
        }
    }

    /// Corrupt blobs never panic: any prefix-truncation of a valid blob is
    /// rejected with a typed error.
    #[test]
    fn truncated_frames_are_typed_errors(
        envs in prop::collection::vec((0usize..64, twobit_msg()), 1..16),
    ) {
        let envs: Vec<Envelope<TwoBitMsg<u64>>> = envs
            .into_iter()
            .map(|(reg, m)| Envelope::new(RegisterId::new(reg), m))
            .collect();
        let blob = Frame::from_envelopes(envs).encode().unwrap();
        for cut in 0..blob.len() {
            prop_assert!(
                Frame::<TwoBitMsg<u64>>::decode(&blob[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }
}

#[test]
fn envelope_delegates_codec_but_does_not_decode() {
    let env = Envelope::new(RegisterId::new(3), TwoBitMsg::Write(Parity::Even, 9u64));
    assert_eq!(env.encoded_bits(), env.inner.encoded_bits());
    let mut w = BitWriter::new();
    env.encode_into(&mut w).unwrap();
    assert_eq!(w.bit_len(), env.inner.encoded_bits());
    // The register tag lives in the frame header, so a bare envelope has
    // no decodable wire form.
    let bytes = w.into_bytes();
    let mut r = BitReader::new(&bytes);
    assert!(matches!(
        Envelope::<TwoBitMsg<u64>>::decode(&mut r),
        Err(WireError::Unsupported(_))
    ));
}

/// Framed MWMR fidelity end to end: the MWMR automaton runs **on decoded
/// bytes** on both deterministic backends (`wire_codec(true)` — every
/// frame crosses `Frame::encode` → `Frame::decode` on its link), with
/// three concurrent writers per register, and the run stays
/// timestamp-order linearizable while the aggregate blob bytes cover the
/// accounted frame bits (gamma self-delimiting makes the wire strictly
/// cover the modeled control+data; the per-frame byte-exact figure is the
/// proptest above).
#[test]
fn mwmr_protocol_runs_on_decoded_bytes_on_both_deterministic_backends() {
    use twobit::lincheck::check_mwmr_sharded;
    use twobit::proto::NetStats;
    use twobit::{
        ClusterBuilder, Driver, MwmrProcess, Operation, ShardedHistory, SpaceBuilder, SystemConfig,
        Workload,
    };

    let cfg = SystemConfig::new(5, 2).unwrap();
    let registers = 3usize;
    let mut w = Workload::new();
    let mut value = 0u64;
    for _round in 0..2 {
        for k in 0..registers {
            let reg = RegisterId::new(k);
            for i in 0..3 {
                value += 1;
                w = w.step((k + i) % 5, reg, Operation::Write(value));
            }
            w = w.step((k + 3) % 5, reg, Operation::Read);
        }
    }

    let verify = |sharded: &ShardedHistory<u64>, stats: &NetStats, label: &str| {
        check_mwmr_sharded(sharded).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(stats.wire_bytes() > 0, "{label}: frames crossed as bytes");
        let accounted_bits = stats.frame_header_bits() + stats.control_bits() + stats.data_bits();
        assert!(
            8 * stats.wire_bytes() >= accounted_bits,
            "{label}: {} wire bytes cannot carry {accounted_bits} accounted bits",
            stats.wire_bytes()
        );
        assert_eq!(
            stats.total_delivered() + stats.dropped_to_crashed(),
            stats.total_sent(),
            "{label}: decoded frames deliver exactly the encoded messages"
        );
    };

    let mut sim = SpaceBuilder::new(cfg)
        .seed(17)
        .registers(registers)
        .wire_codec(true)
        .build(0u64, |_reg, id| MwmrProcess::new(id, cfg, 0u64));
    w.run_pipelined_on(&mut sim).unwrap();
    sim.run_to_quiescence().unwrap();
    verify(&sim.history(), &sim.stats(), "simnet/mwmr/codec");

    let mut cluster = ClusterBuilder::new(cfg)
        .seed(17)
        .registers(registers)
        .wire_codec(true)
        .build_sharded(0u64, |_reg, id| MwmrProcess::new(id, cfg, 0u64))
        .unwrap();
    w.run_pipelined_on(&mut cluster).unwrap();
    let sharded = Driver::history(&cluster);
    // Quiesce (shutdown drains the links) before reconciling: a live
    // snapshot could observe a send whose delivery is still in flight.
    let (_, stats) = cluster.shutdown();
    verify(&sharded, &stats, "runtime/mwmr/codec");
}

#[test]
fn cost_model_only_messages_cannot_cross_a_byte_transport() {
    #[derive(Clone, Debug, PartialEq)]
    struct ModelOnly;
    impl WireMessage for ModelOnly {
        fn kind(&self) -> &'static str {
            "MODEL_ONLY"
        }
        fn cost(&self) -> MessageCost {
            MessageCost::new(1, 0)
        }
    }
    let frame = Frame::from_envelopes([Envelope::new(RegisterId::ZERO, ModelOnly)]);
    assert_eq!(
        frame.encode().unwrap_err(),
        WireError::Unsupported("MODEL_ONLY")
    );
}
