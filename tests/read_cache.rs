//! The epoch-reclaimed local read cache, end to end through the facade:
//! cached reads interleave with protocol reads and remote writes, and the
//! combined histories must stay atomic on every backend and every seed.
//!
//! The safety argument lives in `docs/read-cache.md` and is model-checked
//! in `crates/check` (`twobit_swmr_cached` and its ablated negative
//! control); these tests exercise the same gate under *live* concurrency
//! and randomized simulator schedules, where the cache serves real traffic
//! rather than a scripted handful of operations.

use twobit::lincheck::check_swmr_sharded;
use twobit::{
    CacheMode, ClusterBuilder, DelayModel, Driver, Operation, ProcessId, RegisterId, SpaceBuilder,
    SystemConfig, TwoBitProcess, Workload,
};

const N: usize = 5;
const REGISTERS: usize = 2;

fn cfg() -> SystemConfig {
    SystemConfig::max_resilience(N)
}

fn writer_of(reg: RegisterId) -> ProcessId {
    ProcessId::new(reg.index() % N)
}

/// Writers keep writing and re-reading their own registers (cache hits)
/// while every other process reads through the protocol. Pipelined, so
/// the cached reads overlap remote protocol reads in real time.
fn mixed_cache_workload() -> Workload<u64> {
    let mut w = Workload::new();
    for round in 1..=8u64 {
        for k in 0..REGISTERS {
            let reg = RegisterId::new(k);
            let writer = writer_of(reg);
            w = w.step(writer, reg, Operation::Write(1000 * (k as u64 + 1) + round));
            w = w.step(writer, reg, Operation::Read);
            for other in 1..N {
                w = w.step((writer.index() + other) % N, reg, Operation::Read);
            }
        }
    }
    w
}

/// Live threaded runtime: cached reads race genuinely concurrent protocol
/// reads from four other processes, and the full history linearizes. The
/// writer's re-reads are served locally — the hit counter must show it.
#[test]
fn cached_reads_stay_atomic_under_live_concurrency() {
    let cfg = cfg();
    let mut cluster = ClusterBuilder::new(cfg)
        .seed(21)
        .registers(REGISTERS)
        .cache_mode(CacheMode::Safe)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    let w = mixed_cache_workload();
    w.run_pipelined_on(&mut cluster).expect("workload runs");
    let sharded = Driver::history(&cluster);
    assert_eq!(sharded.total_ops(), w.len(), "every op completed");
    check_swmr_sharded(&sharded).expect("cached + protocol reads linearize");
    let (_, stats) = cluster.shutdown();
    assert!(
        stats.cache_hits() > 0,
        "the writer's re-reads must be served from the cache"
    );
    assert!(
        stats.cache_fallbacks() > 0,
        "non-writer reads must be refused by the gate, not served"
    );
    assert_eq!(
        stats.total_delivered() + stats.dropped_to_crashed() + stats.messages_abandoned(),
        stats.total_sent(),
        "cache hits bypass the network without breaking accounting"
    );
}

/// Deterministic simulator sweep: across many seeds and jittery delay
/// models, the gated cache never costs atomicity, and on every seed the
/// writer's own reads hit while remote reads fall back.
#[test]
fn cached_reads_stay_atomic_across_simulated_schedules() {
    let cfg = cfg();
    for seed in 0..20u64 {
        let mut sim = SpaceBuilder::new(cfg)
            .seed(seed)
            .registers(REGISTERS)
            .delay(DelayModel::Uniform { lo: 1, hi: 400 })
            .cache_mode(CacheMode::Safe)
            .build(0u64, |reg, id| {
                TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
            });
        let w = mixed_cache_workload();
        w.run_pipelined_on(&mut sim).expect("workload runs");
        check_swmr_sharded(&sim.history())
            .unwrap_or_else(|e| panic!("seed {seed}: not atomic: {e}"));
        let stats = sim.stats();
        assert!(stats.cache_hits() > 0, "seed {seed}: no hits");
        assert!(
            stats.cache_fallbacks() > 0,
            "seed {seed}: gate never engaged"
        );
    }
}

/// `CacheMode::Off` really is off: byte-for-byte the pre-cache behavior,
/// zero cache counters, identical history shape.
#[test]
fn off_mode_keeps_counters_at_zero() {
    let cfg = cfg();
    let mut sim = SpaceBuilder::new(cfg)
        .seed(3)
        .registers(REGISTERS)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    mixed_cache_workload().run_on(&mut sim).unwrap();
    let stats = sim.stats();
    assert_eq!(stats.cache_hits(), 0);
    assert_eq!(stats.cache_misses(), 0);
    assert_eq!(stats.cache_fallbacks(), 0);
    check_swmr_sharded(&sim.history()).unwrap();
}
