//! Frame-transport semantics, end to end: the routing-amortization
//! acceptance bar, atomic frame delivery under crashes, and the two-bit
//! claim surviving the batching refactor on both backends.

use std::time::Duration;

use twobit::lincheck::check_swmr_sharded;
use twobit::{
    Cluster, ClusterBuilder, DelayModel, Driver, FlushPolicy, Operation, ProcessId, RegisterId,
    SpaceBuilder, SystemConfig, TwoBitProcess, Workload,
};

const N: usize = 5;

/// The shard-scaling bench's sweep: one write + `readers` reads per
/// register per round, pipelined across shards.
fn sweep_workload(shards: usize, readers: usize, rounds: u64) -> Workload<u64> {
    let mut w = Workload::new();
    for round in 0..rounds {
        for k in 0..shards {
            let reg = RegisterId::new(k);
            let writer = k % N;
            w = w.step(
                writer,
                reg,
                Operation::Write(1 + round * shards as u64 + k as u64),
            );
            for r in 1..=readers {
                w = w.step((writer + r) % N, reg, Operation::Read);
            }
        }
    }
    w
}

/// Byte-codec fidelity on the deterministic engine: with
/// `wire_codec(true)` every frame is encoded to a length-prefixed blob and
/// the *decoded* copy is what gets delivered — the run executes on real
/// bytes. The bytes must reconcile exactly with the three accounted bit
/// classes: each frame blob is a 32-bit prefix plus its body
/// (header + control + data bits) padded to a byte.
#[test]
fn simnet_wire_codec_bytes_reconcile_with_bit_accounting() {
    let cfg = SystemConfig::max_resilience(N);
    let mut sim = SpaceBuilder::new(cfg)
        .seed(42)
        .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
        .flush_hold(500)
        .wire_codec(true)
        .registers(16)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        });
    sweep_workload(16, 2, 4).run_pipelined_on(&mut sim).unwrap();
    sim.run_to_quiescence().unwrap();
    check_swmr_sharded(&sim.history()).unwrap();

    let stats = sim.stats();
    assert!(stats.wire_bytes() > 0);
    assert_eq!(
        stats.control_bits(),
        2 * stats.total_sent(),
        "exactly two control bits per message, on the wire"
    );
    // Exact reconciliation: Σ blob bytes = Σ (4-byte prefix + body padded
    // to a byte), where Σ body bits = header + control + data bits.
    let body_bits = stats.frame_header_bits() + stats.control_bits() + stats.data_bits();
    let frames = stats.frames_sent();
    let wire_bits = stats.wire_bytes() * 8;
    assert!(
        wire_bits >= body_bits + 32 * frames,
        "wire bytes cannot undercut the accounted bits: {wire_bits} < {body_bits} + 32×{frames}"
    );
    assert!(
        wire_bits < body_bits + (32 + 8) * frames,
        "per-frame overhead is bounded by the prefix plus one padding byte"
    );
}

/// The same fidelity mode on the live runtime: the cluster's links encode
/// and decode every frame, and the run stays atomic.
#[test]
fn cluster_wire_codec_stays_atomic_and_counts_bytes() {
    let cfg = SystemConfig::max_resilience(N);
    let mut cluster = ClusterBuilder::new(cfg)
        .seed(9)
        .registers(4)
        .wire_codec(true)
        .op_timeout(Duration::from_secs(10))
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        })
        .unwrap();
    sweep_workload(4, 2, 3).run_on(&mut cluster).unwrap();
    let stats = Cluster::stats(&cluster);
    let sharded = cluster.sharded_history();
    drop(cluster);
    assert!(stats.wire_bytes() > 0, "frames crossed the links as bytes");
    assert_eq!(stats.control_bits(), 2 * stats.total_sent());
    check_swmr_sharded(&sharded).unwrap();
}

/// The PR's acceptance bar: at 64 shards / 4 readers (the bench
/// configuration behind `BENCH_frames.json`), the framed transport's
/// shared headers cost at most half the per-message shard tags of the
/// unframed transport — while every message still carries exactly two
/// control bits.
#[test]
fn framed_routing_at_most_half_of_unframed_at_64_shards() {
    let cfg = SystemConfig::max_resilience(N);
    let mut sim = SpaceBuilder::new(cfg)
        .seed(42)
        .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
        .flush_hold(500)
        .registers(64)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        });
    sweep_workload(64, 4, 4).run_pipelined_on(&mut sim).unwrap();

    let stats = sim.stats();
    // The two-bit claim is untouched by framing: exactly two control bits
    // per message, aggregate and worst-case.
    assert_eq!(stats.control_bits(), 2 * stats.total_sent());
    assert_eq!(stats.max_msg_control_bits(), 2);

    // Routing: the shared delta-encoded headers versus what per-envelope
    // 6-bit tags would have cost (= the unframed transport preserved in
    // BENCH_shards.json; same workload, same message count).
    let unframed = stats.routing_bits();
    let framed = stats.frame_header_bits();
    assert_eq!(unframed, 6 * stats.total_sent(), "⌈log₂ 64⌉ per message");
    assert!(framed > 0, "frames actually carry headers");
    assert!(
        2 * framed <= unframed,
        "framed routing {framed} must be ≤ 50% of unframed {unframed}"
    );

    // And the amortization really is batching: many messages per frame.
    assert!(
        stats.messages_per_frame() > 4.0,
        "expected real coalescing, got {:.2} msgs/frame",
        stats.messages_per_frame()
    );

    // Still an atomic register space, per register.
    check_swmr_sharded(&sim.history()).unwrap();
}

/// Crashes during a frame-heavy run: frames to crashed processes drop
/// whole (delivered + dropped always accounts for every sent message) and
/// the surviving majority keeps every register atomic.
#[test]
fn frames_drop_atomically_under_crashes_and_registers_stay_atomic() {
    let cfg = SystemConfig::max_resilience(N); // t = 2
    let mut sim = SpaceBuilder::new(cfg)
        .seed(7)
        .delay(DelayModel::Uniform { lo: 1, hi: 1_000 })
        .flush_hold(500)
        .registers(16)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        });

    // Warm every register, then crash two processes with frames in flight
    // (staged sends and queued frames both exist mid-workload).
    sweep_workload(16, 2, 1).run_pipelined_on(&mut sim).unwrap();
    sim.crash(ProcessId::new(3)).unwrap();
    sim.crash(ProcessId::new(4)).unwrap();

    // Registers whose writer survives keep taking writes and reads.
    for k in 0..16usize {
        let writer = k % N;
        if writer >= 3 {
            continue; // writer crashed: leave the register read-only
        }
        let reg = RegisterId::new(k);
        sim.write(ProcessId::new(writer), reg, 9_000 + k as u64)
            .unwrap();
        assert_eq!(
            sim.read(ProcessId::new((writer + 1) % 3), reg).unwrap(),
            9_000 + k as u64
        );
    }
    sim.run_to_quiescence().unwrap();

    let stats = sim.stats();
    assert!(
        stats.dropped_to_crashed() > 0,
        "crashes saw in-flight frames"
    );
    assert_eq!(
        stats.total_delivered() + stats.dropped_to_crashed(),
        stats.total_sent(),
        "every message was delivered or dropped with its whole frame"
    );
    check_swmr_sharded(&sim.history()).unwrap();
}

/// The live runtime under an aggressive flush policy: envelopes coalesce
/// into frames on real threads, a crash mid-run drops frames whole, and
/// every register's history still linearizes.
#[test]
fn cluster_frames_batch_and_stay_atomic_under_crash() {
    let cfg = SystemConfig::max_resilience(N);
    let cluster = ClusterBuilder::new(cfg)
        .seed(11)
        .registers(8)
        .flush_policy(FlushPolicy::fixed(64, Duration::from_micros(200)))
        .op_timeout(Duration::from_secs(10))
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, ProcessId::new(reg.index() % N), 0u64)
        })
        .unwrap();

    // Pipeline writes across all 8 registers (per-register writers), then
    // read each back from a neighbour.
    for round in 0..3u64 {
        let mut clients: Vec<_> = (0..8)
            .map(|k| cluster.client_for(k % N, RegisterId::new(k)).unwrap())
            .collect();
        let handles: Vec<_> = clients
            .iter_mut()
            .enumerate()
            .map(|(k, cl)| {
                cl.issue(Operation::Write(100 * (round + 1) + k as u64))
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        for k in 0..8usize {
            let mut r = cluster.client_for((k + 1) % N, RegisterId::new(k)).unwrap();
            assert_eq!(r.read().unwrap(), 100 * (round + 1) + k as u64);
        }
    }

    // Crash a non-writer-critical process; the rest keeps serving.
    cluster.crash(4).unwrap();
    for k in 0..8usize {
        if k % N == 4 {
            continue; // its writer just crashed
        }
        let mut w = cluster.client_for(k % N, RegisterId::new(k)).unwrap();
        w.write(7_000 + k as u64).unwrap();
    }

    let sharded = cluster.sharded_history();
    let stats = Cluster::stats(&cluster);
    drop(cluster);

    assert!(stats.frames_sent() > 0, "links spoke frames");
    // Framed-message accounting is a lower bound live: frames still in
    // flight (or dropped at a crashed link) at snapshot time are not
    // delivered, but nothing travels outside a frame.
    assert!(stats.framed_messages() <= stats.total_sent());
    assert!(stats.total_delivered() <= stats.framed_messages());
    assert_eq!(stats.control_bits(), 2 * stats.total_sent());
    assert_eq!(stats.max_msg_control_bits(), 2);
    check_swmr_sharded(&sharded).unwrap();
}
