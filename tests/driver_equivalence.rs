//! Backend equivalence through the `Driver` trait: one workload definition
//! — no backend-specific code — executes on the deterministic simulator and
//! on the live threaded runtime, and both runs must be atomic per register.
//!
//! This is the contract the API redesign exists to enforce: anything
//! expressible as a `Workload` means the same thing on every backend.

use std::time::Duration;

use twobit::lincheck::{check_mwmr_sharded, check_swmr_sharded};
use twobit::{
    CacheMode, ClusterBuilder, Driver, DriverError, FlushPolicy, Lifecycle, MwmrProcess,
    OhRamProcess, Operation, ProcessId, ReactorClusterBuilder, RegisterId, SpaceBuilder,
    SystemConfig, TcpClusterBuilder, TwoBitProcess, VirtualHold, Workload,
};

const N: usize = 5;
const REGISTERS: usize = 4;

fn cfg() -> SystemConfig {
    SystemConfig::max_resilience(N)
}

/// Register rk's writer is process k mod n (SWMR per register; different
/// registers have different writers, which only a sharded deployment can
/// express).
fn writer_of(reg: RegisterId) -> ProcessId {
    ProcessId::new(reg.index() % N)
}

/// A mixed read/write script across 4 registers and all 5 processes.
fn workload() -> Workload<u64> {
    let mut w = Workload::new();
    for round in 0..6u64 {
        for k in 0..REGISTERS {
            let reg = RegisterId::new(k);
            let writer = writer_of(reg);
            w = w.step(writer, reg, Operation::Write(100 * (k as u64 + 1) + round));
            // Two readers per register per round.
            w = w.step((writer.index() + 1) % N, reg, Operation::Read);
            w = w.step((writer.index() + 2) % N, reg, Operation::Read);
        }
    }
    w
}

fn check_backend<D: Driver<Value = u64>>(driver: &mut D, label: &str) {
    let w = workload();
    w.run_on(driver).unwrap_or_else(|e| panic!("{label}: {e}"));
    let sharded = driver.history();
    assert_eq!(sharded.len(), REGISTERS, "{label}: register count");
    assert_eq!(sharded.total_ops(), w.len(), "{label}: op count");
    let verdicts =
        check_swmr_sharded(&sharded).unwrap_or_else(|e| panic!("{label}: not atomic: {e}"));
    for (reg, verdict) in &verdicts {
        assert_eq!(verdict.writes, 6, "{label}: {reg} writes");
        assert_eq!(verdict.reads_checked, 12, "{label}: {reg} reads");
    }
}

#[test]
fn same_workload_runs_on_simulator_backend() {
    let cfg = cfg();
    let mut sim = SpaceBuilder::new(cfg)
        .seed(7)
        .registers(REGISTERS)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    check_backend(&mut sim, "simnet");
}

#[test]
fn same_workload_runs_on_runtime_backend() {
    let cfg = cfg();
    let mut cluster = ClusterBuilder::new(cfg)
        .seed(7)
        .registers(REGISTERS)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    check_backend(&mut cluster, "runtime");
}

#[test]
fn same_workload_runs_on_tcp_backend() {
    let cfg = cfg();
    let mut cluster = TcpClusterBuilder::new(cfg)
        .registers(REGISTERS)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .expect("loopback TCP cluster starts");
    check_backend(&mut cluster, "tcp");
    assert!(
        cluster.stats().wire_bytes() > 0,
        "tcp: the workload crossed real sockets as encoded frames"
    );
}

#[test]
fn same_workload_runs_on_reactor_backend() {
    let cfg = cfg();
    let mut node = ReactorClusterBuilder::new(cfg)
        .registers(REGISTERS)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .expect("loopback reactor cluster starts");
    check_backend(&mut node, "reactor");
    let stats = node.stats();
    assert!(
        stats.wire_bytes() > 0,
        "reactor: the workload crossed real sockets as encoded frames"
    );
    assert_eq!(stats.reconnects(), 0, "reactor: no failures were injected");
}

/// The reactor backend and the simulator agree per register: same
/// completed operation counts, same per-register atomicity verdicts, and
/// the same written-value sequences — the reactor is an execution
/// substrate, not a semantics change.
#[test]
fn reactor_histories_match_simnet_per_register() {
    let cfg = cfg();
    let w = workload();

    let mut sim = SpaceBuilder::new(cfg)
        .seed(7)
        .registers(REGISTERS)
        .wire_codec(true)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    w.run_on(&mut sim).unwrap();
    let sim_hist = sim.history();
    let sim_verdicts = check_swmr_sharded(&sim_hist).unwrap();

    let mut node = ReactorClusterBuilder::new(cfg)
        .registers(REGISTERS)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    w.run_on(&mut node).unwrap();
    let (node_hist, node_stats) = node.shutdown();
    let node_verdicts = check_swmr_sharded(&node_hist).unwrap();

    assert_eq!(sim_hist.len(), node_hist.len(), "register count");
    assert_eq!(sim_hist.total_ops(), node_hist.total_ops(), "op count");
    for ((reg_s, v_s), (reg_r, v_r)) in sim_verdicts.iter().zip(node_verdicts.iter()) {
        assert_eq!(reg_s, reg_r);
        assert_eq!(v_s.writes, v_r.writes, "{reg_s}: write count");
        assert_eq!(v_s.reads_checked, v_r.reads_checked, "{reg_s}: read count");
    }
    for (reg, sim_shard) in sim_hist.iter() {
        let node_shard = node_hist.shard(reg).unwrap();
        let writes = |h: &twobit::History<u64>| -> Vec<u64> {
            h.records
                .iter()
                .filter_map(|r| r.op.written_value().copied())
                .collect()
        };
        assert_eq!(writes(sim_shard), writes(node_shard), "{reg}: write values");
    }
    assert_eq!(
        node_stats.total_delivered()
            + node_stats.dropped_to_crashed()
            + node_stats.messages_abandoned(),
        node_stats.total_sent(),
        "reactor: delivered + dropped + abandoned == sent"
    );
}

/// The TCP backend and the simulator agree per register: same completed
/// operation counts, same per-register atomicity verdicts (write/read
/// tallies), and — since the workload's writes are fixed — the same
/// written-value sequences. Interleavings differ (real scheduler vs
/// virtual time); the *register semantics* must not.
#[test]
fn tcp_histories_match_simnet_per_register() {
    let cfg = cfg();
    let w = workload();

    let mut sim = SpaceBuilder::new(cfg)
        .seed(7)
        .registers(REGISTERS)
        .wire_codec(true)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    w.run_on(&mut sim).unwrap();
    let sim_hist = sim.history();
    let sim_verdicts = check_swmr_sharded(&sim_hist).unwrap();

    let mut tcp = TcpClusterBuilder::new(cfg)
        .registers(REGISTERS)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    w.run_on(&mut tcp).unwrap();
    let tcp_hist = Driver::history(&tcp);
    let tcp_verdicts = check_swmr_sharded(&tcp_hist).unwrap();

    assert_eq!(sim_hist.len(), tcp_hist.len(), "register count");
    assert_eq!(sim_hist.total_ops(), tcp_hist.total_ops(), "op count");
    for ((reg_s, v_s), (reg_t, v_t)) in sim_verdicts.iter().zip(tcp_verdicts.iter()) {
        assert_eq!(reg_s, reg_t);
        assert_eq!(v_s.writes, v_t.writes, "{reg_s}: write count");
        assert_eq!(v_s.reads_checked, v_t.reads_checked, "{reg_s}: read count");
    }
    for (reg, sim_shard) in sim_hist.iter() {
        let tcp_shard = tcp_hist.shard(reg).unwrap();
        let writes = |h: &twobit::History<u64>| -> Vec<u64> {
            h.records
                .iter()
                .filter_map(|r| r.op.written_value().copied())
                .collect()
        };
        assert_eq!(writes(sim_shard), writes(tcp_shard), "{reg}: write values");
    }
}

/// The adaptive flush policy is a transport knob, not a semantics knob:
/// the same workload under auto-tuned per-link holds (plus a per-link
/// override, exercising asymmetric configurations) must still produce
/// linearizable sharded histories on all three backends, with every frame
/// carrying a flush reason.
#[test]
fn adaptive_flush_policies_stay_linearizable_on_all_backends() {
    let cfg = cfg();

    let mut sim = SpaceBuilder::new(cfg)
        .seed(7)
        .registers(REGISTERS)
        .flush_hold_policy(VirtualHold::Adaptive {
            floor: 0,
            ceil: 1_500,
        })
        .flush_hold_for(0, 1, VirtualHold::Static(0))
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    check_backend(&mut sim, "simnet/adaptive");
    let stats = sim.stats();
    assert_eq!(
        stats.flushes_total(),
        stats.frames_sent(),
        "simnet/adaptive: one flush reason per frame"
    );

    let adaptive = FlushPolicy::adaptive(64, Duration::ZERO, Duration::from_micros(300));
    let mut cluster = ClusterBuilder::new(cfg)
        .seed(7)
        .registers(REGISTERS)
        .flush_policy(adaptive)
        .flush_policy_for(0, 1, FlushPolicy::immediate())
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    check_backend(&mut cluster, "runtime/adaptive");
    let stats = Driver::stats(&cluster);
    assert_eq!(
        stats.flushes_total(),
        stats.frames_sent(),
        "runtime/adaptive: one flush reason per frame"
    );

    let mut tcp = TcpClusterBuilder::new(cfg)
        .registers(REGISTERS)
        .flush_policy(adaptive)
        .flush_policy_for(0, 1, FlushPolicy::immediate())
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .expect("loopback TCP cluster starts");
    check_backend(&mut tcp, "tcp/adaptive");
    let stats = tcp.stats();
    assert_eq!(stats.links_abandoned(), 0, "tcp/adaptive: no failed links");
}

/// A script whose cache decisions are fully determined: each round writes
/// a register, lets its writer re-read it (the safety gate admits exactly
/// this), then reads it from a non-writer (the gate refuses). Run
/// sequentially, every backend must make the *same* decisions.
fn cached_workload() -> Workload<u64> {
    let mut w = Workload::new();
    for round in 0..6u64 {
        for k in 0..REGISTERS {
            let reg = RegisterId::new(k);
            let writer = writer_of(reg);
            w = w.step(writer, reg, Operation::Write(100 * (k as u64 + 1) + round));
            // The writer's own read: served from its local cache.
            w = w.step(writer, reg, Operation::Read);
            // A non-writer's read: always through the protocol.
            w = w.step((writer.index() + 1) % N, reg, Operation::Read);
        }
    }
    w
}

/// The local read cache is a semantics-preserving optimization and its hit
/// accounting is part of the backend contract: simulator, threaded runtime
/// and real TCP must agree on the exact cache hit/miss/fallback counts for
/// a deterministic sequential script, all three histories must stay
/// atomic, and message accounting must still reconcile.
#[test]
fn safe_read_cache_decisions_agree_across_backends() {
    let cfg = cfg();
    // 6 rounds × 4 registers: every writer-read after the first write hits.
    let expect_hits = 6 * REGISTERS as u64;
    // Per (register, non-writer) pair the first read finds an empty slot
    // (miss), the remaining five find a gated entry (fallback).
    let expect_misses = REGISTERS as u64;
    let expect_fallbacks = 5 * REGISTERS as u64;

    let check = |label: &str, hist: &twobit::proto::ShardedHistory<u64>| {
        let verdicts =
            check_swmr_sharded(hist).unwrap_or_else(|e| panic!("{label}: not atomic: {e}"));
        for (reg, verdict) in &verdicts {
            assert_eq!(verdict.writes, 6, "{label}: {reg} writes");
            assert_eq!(verdict.reads_checked, 12, "{label}: {reg} reads");
        }
    };

    let mut sim = SpaceBuilder::new(cfg)
        .seed(7)
        .registers(REGISTERS)
        .cache_mode(CacheMode::Safe)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    cached_workload().run_on(&mut sim).unwrap();
    check("simnet/cache", &sim.history());
    // Drain trailing quorum acks before reconciling delivery accounting.
    sim.run_to_quiescence().unwrap();
    let sim_stats = sim.stats();

    let mut cluster = ClusterBuilder::new(cfg)
        .seed(7)
        .registers(REGISTERS)
        .cache_mode(CacheMode::Safe)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    cached_workload().run_on(&mut cluster).unwrap();
    check("runtime/cache", &Driver::history(&cluster));
    let rt_stats = Driver::stats(&cluster);

    let mut tcp = TcpClusterBuilder::new(cfg)
        .registers(REGISTERS)
        .cache_mode(CacheMode::Safe)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .expect("loopback TCP cluster starts");
    cached_workload().run_on(&mut tcp).unwrap();
    check("tcp/cache", &Driver::history(&tcp));
    let (_, tcp_stats) = tcp.shutdown();

    for (label, stats) in [
        ("simnet/cache", &sim_stats),
        ("runtime/cache", &rt_stats),
        ("tcp/cache", &tcp_stats),
    ] {
        assert_eq!(stats.cache_hits(), expect_hits, "{label}: hits");
        assert_eq!(stats.cache_misses(), expect_misses, "{label}: misses");
        assert_eq!(
            stats.cache_fallbacks(),
            expect_fallbacks,
            "{label}: fallbacks"
        );
    }
    // A cache hit is a *local* completion — accounting still reconciles.
    assert_eq!(
        sim_stats.total_delivered() + sim_stats.dropped_to_crashed(),
        sim_stats.total_sent(),
        "simnet/cache: delivered + dropped == sent"
    );
    assert_eq!(
        tcp_stats.total_delivered()
            + tcp_stats.dropped_to_crashed()
            + tcp_stats.messages_abandoned(),
        tcp_stats.total_sent(),
        "tcp/cache: delivered + dropped + abandoned == sent"
    );
}

/// MWMR workload: every register takes **three concurrent writers** per
/// round (issued back-to-back through the pipelined runner — distinct
/// `(process, register)` pairs overlap freely) plus two readers. Values
/// are globally unique so the timestamp-order checker can attribute reads.
fn mwmr_workload() -> Workload<u64> {
    let mut w = Workload::new();
    let mut value = 0u64;
    for _round in 0..3 {
        for k in 0..REGISTERS {
            let reg = RegisterId::new(k);
            for i in 0..3 {
                value += 1;
                w = w.step((k + i) % N, reg, Operation::Write(value));
            }
            w = w.step((k + 3) % N, reg, Operation::Read);
            w = w.step((k + 4) % N, reg, Operation::Read);
        }
    }
    w
}

/// Runs the MWMR workload pipelined (so the three writers per register
/// genuinely overlap) and verifies timestamp-order linearizability per
/// register.
fn check_mwmr_backend<D: Driver<Value = u64>>(driver: &mut D, label: &str) {
    let w = mwmr_workload();
    w.run_pipelined_on(driver)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let sharded = driver.history();
    assert_eq!(sharded.len(), REGISTERS, "{label}: register count");
    assert_eq!(sharded.total_ops(), w.len(), "{label}: op count");
    let verdicts =
        check_mwmr_sharded(&sharded).unwrap_or_else(|e| panic!("{label}: not linearizable: {e}"));
    for (reg, verdict) in &verdicts {
        assert_eq!(verdict.writes, 9, "{label}: {reg} writes");
        assert_eq!(verdict.reads_checked, 6, "{label}: {reg} reads");
        assert_eq!(
            verdict.write_order.len(),
            9,
            "{label}: {reg} resolved order covers every write"
        );
    }
}

/// The same MWMR workload runs identically on simnet, the in-process
/// runtime and real TCP — multi-writer registers as first-class citizens
/// of every backend, byte codec in the loop, and message accounting that
/// still reconciles at teardown.
#[test]
fn mwmr_workload_runs_on_all_three_backends() {
    let cfg = cfg();

    let mut sim = SpaceBuilder::new(cfg)
        .seed(5)
        .registers(REGISTERS)
        .wire_codec(true)
        .build(0u64, |_reg, id| MwmrProcess::new(id, cfg, 0u64));
    check_mwmr_backend(&mut sim, "simnet/mwmr");
    // Drain trailing acks (quorum answers that arrive after the op
    // completed) before reconciling delivery accounting.
    sim.run_to_quiescence().unwrap();
    let sim_stats = sim.stats();
    assert!(
        sim_stats.wire_bytes() > 0,
        "simnet/mwmr: frames crossed as bytes"
    );
    let sim_hist = sim.history();

    let mut cluster = ClusterBuilder::new(cfg)
        .seed(5)
        .registers(REGISTERS)
        .wire_codec(true)
        .build_sharded(0u64, |_reg, id| MwmrProcess::new(id, cfg, 0u64))
        .unwrap();
    check_mwmr_backend(&mut cluster, "runtime/mwmr");
    let runtime_hist = Driver::history(&cluster);

    let mut tcp = TcpClusterBuilder::new(cfg)
        .registers(REGISTERS)
        .build_sharded(0u64, |_reg, id| MwmrProcess::new(id, cfg, 0u64))
        .expect("loopback TCP cluster starts");
    check_mwmr_backend(&mut tcp, "tcp/mwmr");
    let tcp_hist = Driver::history(&tcp);
    let (_, tcp_stats) = tcp.shutdown();
    assert!(
        tcp_stats.wire_bytes() > 0,
        "tcp/mwmr: real bytes on real sockets"
    );
    assert_eq!(
        tcp_stats.total_delivered()
            + tcp_stats.dropped_to_crashed()
            + tcp_stats.messages_abandoned(),
        tcp_stats.total_sent(),
        "tcp/mwmr: delivered + dropped + abandoned == sent"
    );
    assert_eq!(tcp_stats.links_abandoned(), 0, "tcp/mwmr: no failed links");
    assert_eq!(
        sim_stats.total_delivered() + sim_stats.dropped_to_crashed(),
        sim_stats.total_sent(),
        "simnet/mwmr: delivered + dropped == sent"
    );

    // Per-register histories agree across backends: the same writes (same
    // value multisets — interleavings legitimately differ) and the same
    // completed-op counts.
    let writes_of = |h: &twobit::History<u64>| -> Vec<u64> {
        let mut vs: Vec<u64> = h
            .records
            .iter()
            .filter_map(|r| r.op.written_value().copied())
            .collect();
        vs.sort_unstable();
        vs
    };
    for (reg, sim_shard) in sim_hist.iter() {
        let rt_shard = runtime_hist.shard(reg).unwrap();
        let tcp_shard = tcp_hist.shard(reg).unwrap();
        assert_eq!(
            writes_of(sim_shard),
            writes_of(rt_shard),
            "{reg}: sim vs runtime"
        );
        assert_eq!(
            writes_of(sim_shard),
            writes_of(tcp_shard),
            "{reg}: sim vs tcp"
        );
        assert_eq!(
            sim_shard.len(),
            rt_shard.len(),
            "{reg}: op counts sim vs runtime"
        );
        assert_eq!(
            sim_shard.len(),
            tcp_shard.len(),
            "{reg}: op counts sim vs tcp"
        );
    }
}

/// Three concurrent writers on one MWMR register — the acceptance
/// scenario — with a crash mid-run: the surviving majority keeps every
/// writer live and the history stays timestamp-order linearizable on both
/// deterministic backends.
#[test]
fn mwmr_concurrent_writers_survive_a_crash() {
    let cfg = cfg();
    let run = |driver: &mut dyn Driver<Value = u64>| {
        let reg = RegisterId::new(0);
        // Round 1: three writers overlap.
        let tickets: Vec<_> = (0..3)
            .map(|i| {
                driver
                    .invoke(ProcessId::new(i), reg, Operation::Write(10 + i as u64))
                    .unwrap()
            })
            .collect();
        for t in &tickets {
            driver.poll(t).unwrap();
        }
        driver.crash(ProcessId::new(4)).unwrap();
        // Round 2: all three write again after the crash.
        let tickets: Vec<_> = (0..3)
            .map(|i| {
                driver
                    .invoke(ProcessId::new(i), reg, Operation::Write(20 + i as u64))
                    .unwrap()
            })
            .collect();
        for t in &tickets {
            driver.poll(t).unwrap();
        }
        let got = driver.read(ProcessId::new(3), reg).unwrap();
        assert!(
            (20..23).contains(&got),
            "a round-2 write is freshest, got {got}"
        );
        check_mwmr_sharded(&driver.history()).unwrap();
    };

    let mut sim = SpaceBuilder::new(cfg)
        .seed(9)
        .registers(1)
        .wire_codec(true)
        .build(0u64, |_reg, id| MwmrProcess::new(id, cfg, 0u64));
    run(&mut sim);

    let mut cluster = ClusterBuilder::new(cfg)
        .seed(9)
        .registers(1)
        .wire_codec(true)
        .build_sharded(0u64, |_reg, id| MwmrProcess::new(id, cfg, 0u64))
        .unwrap();
    run(&mut cluster);
}

#[test]
fn pipelined_execution_is_equivalent_too() {
    let cfg = cfg();
    let w = workload();

    let mut sim = SpaceBuilder::new(cfg)
        .seed(11)
        .registers(REGISTERS)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    w.run_pipelined_on(&mut sim).unwrap();
    check_swmr_sharded(&sim.history()).unwrap();

    let mut cluster = ClusterBuilder::new(cfg)
        .seed(11)
        .registers(REGISTERS)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    w.run_pipelined_on(&mut cluster).unwrap();
    check_swmr_sharded(&Driver::history(&cluster)).unwrap();
}

#[test]
fn crash_tolerance_is_portable() {
    // Crash t processes mid-workload through the same Driver calls on both
    // backends; surviving quorums must keep every register live and atomic.
    let cfg = cfg();
    let run = |driver: &mut dyn Driver<Value = u64>| {
        let reg = RegisterId::new(0);
        let writer = writer_of(reg); // p0: not crashed below
        driver.write(writer, reg, 1).unwrap();
        driver.crash(ProcessId::new(3)).unwrap();
        driver.crash(ProcessId::new(4)).unwrap();
        driver.write(writer, reg, 2).unwrap();
        assert_eq!(driver.read(ProcessId::new(1), reg).unwrap(), 2);
        // A crashed process cannot invoke.
        assert!(matches!(
            driver.invoke(ProcessId::new(4), reg, Operation::Read),
            Err(DriverError::ProcessUnavailable(_))
        ));
        check_swmr_sharded(&driver.history()).unwrap();
    };

    let mut sim = SpaceBuilder::new(cfg)
        .seed(3)
        .registers(REGISTERS)
        .build(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    run(&mut sim);

    let mut cluster = ClusterBuilder::new(cfg)
        .seed(3)
        .registers(REGISTERS)
        .build_sharded(0u64, |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    run(&mut cluster);
}

/// One crash-recover-rejoin workload, four backends, identical per-register
/// histories. A replica crashes and rejoins mid-run (it must then serve
/// reads through the protocol again), and afterwards the *writer* crashes
/// and rejoins (the rejoin must re-admit it as the writer with a fresh
/// incarnation). The extracted history fingerprint — completed-op count,
/// written-value sequence, read results, and `(process, incarnation)`
/// recovery records — must be the same on the deterministic simulator, the
/// threaded runtime, real TCP, and the reactor.
#[test]
fn crash_recover_rejoin_is_portable_across_all_four_backends() {
    let cfg = cfg();
    let reg = RegisterId::new(0);
    let writer = writer_of(reg); // p0
    let replica = ProcessId::new(3);

    type Fingerprint = (usize, Vec<u64>, Vec<u64>, Vec<(usize, u64)>);
    let run = |driver: &mut dyn Driver<Value = u64>, label: &str| -> Fingerprint {
        driver.write(writer, reg, 1).unwrap();

        // A replica crashes; the surviving quorum keeps the register live.
        driver.crash(replica).unwrap();
        assert_eq!(driver.lifecycle(replica), Lifecycle::Crashed, "{label}");
        driver.write(writer, reg, 2).unwrap();

        // The replica rejoins and must serve through the protocol again.
        driver.recover(replica).unwrap();
        assert_eq!(driver.lifecycle(replica), Lifecycle::Up, "{label}");
        assert_eq!(driver.read(replica, reg).unwrap(), 2, "{label}");

        // Now the writer itself crashes and rejoins: the recovery barrier
        // re-admits it as the writer with a bumped incarnation, so its next
        // write (which reuses a dead sequence number) still completes on a
        // genuine quorum.
        driver.crash(writer).unwrap();
        assert!(
            matches!(
                driver.invoke(writer, reg, Operation::Read),
                Err(DriverError::ProcessUnavailable(_))
            ),
            "{label}: a crashed process cannot invoke"
        );
        driver.recover(writer).unwrap();
        assert_eq!(driver.lifecycle(writer), Lifecycle::Up, "{label}");
        driver.write(writer, reg, 3).unwrap();
        assert_eq!(driver.read(ProcessId::new(1), reg).unwrap(), 3, "{label}");

        let hist = driver.history();
        check_swmr_sharded(&hist).unwrap_or_else(|e| panic!("{label}: not atomic: {e}"));
        let shard = hist.shard(reg).unwrap();
        let writes: Vec<u64> = shard
            .records
            .iter()
            .filter_map(|r| r.op.written_value().copied())
            .collect();
        let reads: Vec<u64> = shard
            .reads()
            .filter_map(|r| r.completed.as_ref().and_then(|(_, o)| o.read_value()))
            .copied()
            .collect();
        let recoveries: Vec<(usize, u64)> = shard
            .recoveries
            .iter()
            .map(|r| (r.proc.index(), r.incarnation))
            .collect();
        (shard.len(), writes, reads, recoveries)
    };

    let mut sim = SpaceBuilder::new(cfg)
        .seed(7)
        .registers(1)
        .recovery(true)
        .build(0u64, move |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    let sim_fp = run(&mut sim, "simnet");
    assert_eq!(
        sim_fp,
        (
            5,
            vec![1, 2, 3],
            vec![2, 3],
            vec![(replica.index(), 1), (writer.index(), 1)]
        ),
        "simnet: expected fingerprint"
    );
    assert_eq!(
        sim.stats().recoveries(),
        2,
        "simnet: both rejoins accounted"
    );
    assert!(
        sim.stats().snapshot_frames() > 0,
        "simnet: snapshots crossed as frames"
    );

    let mut cluster = ClusterBuilder::new(cfg)
        .seed(7)
        .registers(1)
        .build_sharded(0u64, move |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    let rt_fp = run(&mut cluster, "runtime");
    assert_eq!(sim_fp, rt_fp, "runtime fingerprint diverges from simnet");

    let mut tcp = TcpClusterBuilder::new(cfg)
        .registers(1)
        .build_sharded(0u64, move |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .expect("loopback TCP cluster starts");
    let tcp_fp = run(&mut tcp, "tcp");
    assert_eq!(sim_fp, tcp_fp, "tcp fingerprint diverges from simnet");
    assert!(
        tcp.stats().snapshot_frames() > 0,
        "tcp: snapshots crossed real sockets"
    );

    let mut node = ReactorClusterBuilder::new(cfg)
        .registers(1)
        .build_sharded(0u64, move |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .expect("loopback reactor cluster starts");
    let reactor_fp = run(&mut node, "reactor");
    assert_eq!(
        sim_fp, reactor_fp,
        "reactor fingerprint diverges from simnet"
    );
}

/// Oh-RAM workload: writes from each register's single writer plus enough
/// overlapping readers that both of the read completion rules (the uniform
/// fast quorum and the relayed minimum) see real traffic. Run pipelined so
/// reads overlap writes and each other.
fn ohram_workload() -> Workload<u64> {
    let mut w = Workload::new();
    for round in 0..6u64 {
        for k in 0..REGISTERS {
            let reg = RegisterId::new(k);
            let writer = writer_of(reg);
            w = w.step(writer, reg, Operation::Write(100 * (k as u64 + 1) + round));
            // Three readers per register per round, rotating — including
            // the writer itself reading its own register.
            w = w.step((writer.index() + 1) % N, reg, Operation::Read);
            w = w.step((writer.index() + 2) % N, reg, Operation::Read);
            w = w.step(writer.index(), reg, Operation::Read);
        }
    }
    w
}

/// Per-register history fingerprint: completed-op count, written-value
/// sequence, and the multiset of read results. Interleavings legitimately
/// differ across backends (virtual time vs real schedulers), so read
/// results are compared as sorted multisets, not sequences.
fn ohram_fingerprint(
    hist: &twobit::proto::ShardedHistory<u64>,
) -> Vec<(usize, Vec<u64>, Vec<u64>)> {
    hist.iter()
        .map(|(_, shard)| {
            let writes: Vec<u64> = shard
                .records
                .iter()
                .filter_map(|r| r.op.written_value().copied())
                .collect();
            let mut reads: Vec<u64> = shard
                .reads()
                .filter_map(|r| r.completed.as_ref().and_then(|(_, o)| o.read_value()))
                .copied()
                .collect();
            reads.sort_unstable();
            (shard.len(), writes, reads)
        })
        .collect()
}

/// The Oh-RAM automaton is a first-class citizen of every backend: the
/// same workload runs identically on the deterministic simulator, the
/// threaded runtime, real TCP and the reactor; every history passes the
/// SWMR atomicity checker (Oh-RAM keeps the single-writer contract); the
/// per-register fingerprints agree; and message accounting reconciles
/// *exactly* — `delivered + dropped + abandoned == sent` — even with the
/// n² relay traffic in flight at shutdown.
#[test]
fn ohram_workload_runs_on_all_four_backends() {
    let cfg = cfg();
    let w = ohram_workload();

    let check = |label: &str, hist: &twobit::proto::ShardedHistory<u64>| {
        assert_eq!(hist.len(), REGISTERS, "{label}: register count");
        assert_eq!(hist.total_ops(), w.len(), "{label}: op count");
        let verdicts =
            check_swmr_sharded(hist).unwrap_or_else(|e| panic!("{label}: not atomic: {e}"));
        for (reg, verdict) in &verdicts {
            assert_eq!(verdict.writes, 6, "{label}: {reg} writes");
            assert_eq!(verdict.reads_checked, 18, "{label}: {reg} reads");
        }
    };

    let mut sim = SpaceBuilder::new(cfg)
        .seed(7)
        .registers(REGISTERS)
        .wire_codec(true)
        .build(0u64, |reg, id| {
            OhRamProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    w.run_pipelined_on(&mut sim).unwrap();
    check("simnet/ohram", &sim.history());
    // Drain trailing relay traffic before reconciling delivery accounting.
    sim.run_to_quiescence().unwrap();
    let sim_stats = sim.stats();
    assert_eq!(
        sim_stats.total_delivered() + sim_stats.dropped_to_crashed(),
        sim_stats.total_sent(),
        "simnet/ohram: delivered + dropped == sent"
    );
    let sim_fp = ohram_fingerprint(&sim.history());

    let mut cluster = ClusterBuilder::new(cfg)
        .seed(7)
        .registers(REGISTERS)
        .wire_codec(true)
        .build_sharded(0u64, |reg, id| {
            OhRamProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    w.run_pipelined_on(&mut cluster).unwrap();
    check("runtime/ohram", &Driver::history(&cluster));
    let rt_fp = ohram_fingerprint(&Driver::history(&cluster));

    let mut tcp = TcpClusterBuilder::new(cfg)
        .registers(REGISTERS)
        .build_sharded(0u64, |reg, id| {
            OhRamProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .expect("loopback TCP cluster starts");
    w.run_pipelined_on(&mut tcp).unwrap();
    check("tcp/ohram", &Driver::history(&tcp));
    let tcp_fp = ohram_fingerprint(&Driver::history(&tcp));
    let (_, tcp_stats) = tcp.shutdown();
    assert!(
        tcp_stats.wire_bytes() > 0,
        "tcp/ohram: real bytes on real sockets"
    );
    assert_eq!(
        tcp_stats.total_delivered()
            + tcp_stats.dropped_to_crashed()
            + tcp_stats.messages_abandoned(),
        tcp_stats.total_sent(),
        "tcp/ohram: delivered + dropped + abandoned == sent"
    );

    let mut node = ReactorClusterBuilder::new(cfg)
        .registers(REGISTERS)
        .build_sharded(0u64, |reg, id| {
            OhRamProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .expect("loopback reactor cluster starts");
    w.run_pipelined_on(&mut node).unwrap();
    check("reactor/ohram", &Driver::history(&node));
    let reactor_fp = ohram_fingerprint(&Driver::history(&node));
    let (_, node_stats) = node.shutdown();
    assert_eq!(
        node_stats.total_delivered()
            + node_stats.dropped_to_crashed()
            + node_stats.messages_abandoned(),
        node_stats.total_sent(),
        "reactor/ohram: delivered + dropped + abandoned == sent"
    );

    // Writes are fixed by the script, so the write sequences must agree
    // verbatim everywhere; read multisets must agree because every read
    // returns some written (or initial) value of a single-writer history
    // with per-script determinism in what was written.
    let writes_only = |fp: &[(usize, Vec<u64>, Vec<u64>)]| -> Vec<(usize, Vec<u64>)> {
        fp.iter().map(|(n, w, _)| (*n, w.clone())).collect()
    };
    assert_eq!(
        writes_only(&sim_fp),
        writes_only(&rt_fp),
        "runtime fingerprint diverges from simnet"
    );
    assert_eq!(
        writes_only(&sim_fp),
        writes_only(&tcp_fp),
        "tcp fingerprint diverges from simnet"
    );
    assert_eq!(
        writes_only(&sim_fp),
        writes_only(&reactor_fp),
        "reactor fingerprint diverges from simnet"
    );
}

/// Lifecycle misuse is a *typed* error on every backend — no panics, no
/// silently-accepted double crash (the TCP and reactor builders used to
/// absorb a second `crash` of the same process without complaint).
#[test]
fn lifecycle_errors_are_typed_and_uniform_across_backends() {
    let cfg = cfg();
    let run = |driver: &mut dyn Driver<Value = u64>, label: &str| {
        let p = ProcessId::new(4);
        let ghost = ProcessId::new(99);
        assert!(
            matches!(driver.recover(p), Err(DriverError::NotCrashed(q)) if q == p),
            "{label}: recovering an up process"
        );
        driver.crash(p).unwrap();
        assert!(
            matches!(driver.crash(p), Err(DriverError::AlreadyCrashed(q)) if q == p),
            "{label}: double crash"
        );
        assert!(
            matches!(driver.crash(ghost), Err(DriverError::UnknownProcess(q)) if q == ghost),
            "{label}: crashing an unknown process"
        );
        assert!(
            matches!(driver.recover(ghost), Err(DriverError::UnknownProcess(q)) if q == ghost),
            "{label}: recovering an unknown process"
        );
        assert_eq!(driver.lifecycle(p), Lifecycle::Crashed, "{label}");
        assert_eq!(
            driver.lifecycle(ghost),
            Lifecycle::Crashed,
            "{label}: out-of-range processes read as crashed"
        );
    };

    let mut sim = SpaceBuilder::new(cfg)
        .seed(1)
        .registers(1)
        .recovery(true)
        .build(0u64, move |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        });
    run(&mut sim, "simnet");

    let mut cluster = ClusterBuilder::new(cfg)
        .seed(1)
        .registers(1)
        .build_sharded(0u64, move |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .unwrap();
    run(&mut cluster, "runtime");

    let mut tcp = TcpClusterBuilder::new(cfg)
        .registers(1)
        .build_sharded(0u64, move |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .expect("loopback TCP cluster starts");
    run(&mut tcp, "tcp");

    let mut node = ReactorClusterBuilder::new(cfg)
        .registers(1)
        .build_sharded(0u64, move |reg, id| {
            TwoBitProcess::new(id, cfg, writer_of(reg), 0u64)
        })
        .expect("loopback reactor cluster starts");
    run(&mut node, "reactor");
}
