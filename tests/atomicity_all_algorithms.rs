//! Cross-crate integration: every register implementation in the workspace,
//! run on the simulator under assorted schedules, produces atomic histories
//! and loses no liveness while at most `t` processes crash.

use twobit::baselines::{
    abd_bounded_profile, attiya_profile, AbdProcess, MwmrProcess, PhasedProcess,
};
use twobit::core::TwoBitProcess;
use twobit::simnet::{ClientPlan, CrashPlan, CrashPoint, DelayModel, PlannedOp, SimBuilder};
use twobit::{Automaton, Operation, ProcessId, SystemConfig};

const DELTA: u64 = 1_000;

fn delays() -> Vec<DelayModel> {
    vec![
        DelayModel::Fixed(DELTA),
        DelayModel::Uniform { lo: 1, hi: DELTA },
        DelayModel::Spiky {
            lo: 1,
            hi: DELTA / 2,
            spike_ppm: 200_000,
            spike_lo: DELTA,
            spike_hi: 5 * DELTA,
        },
    ]
}

fn crash_plans(n: usize, t: usize) -> Vec<CrashPlan> {
    let mut plans = vec![CrashPlan::none()];
    if t >= 1 {
        plans.push(CrashPlan::none().with_crash(n - 1, CrashPoint::AtTime(3 * DELTA)));
        plans.push(CrashPlan::none().with_crash(
            n - 1,
            CrashPoint::OnStep {
                step: 2,
                sends_allowed: 1,
            },
        ));
    }
    if t >= 2 {
        plans.push(
            CrashPlan::none()
                .with_crash(n - 1, CrashPoint::AtTime(2 * DELTA))
                .with_crash(n - 2, CrashPoint::AtTime(6 * DELTA)),
        );
    }
    plans
}

/// Runs a mixed workload on `make`-built automatons and checks atomicity.
fn exercise_swmr<A, F>(n: usize, seed: u64, delay: DelayModel, crashes: CrashPlan, make: F)
where
    A: Automaton<Value = u64>,
    F: FnMut(ProcessId) -> A,
{
    let cfg = SystemConfig::max_resilience(n);
    let mut sim = SimBuilder::new(cfg)
        .seed(seed)
        .delay(delay)
        .crashes(crashes)
        .check_every(0)
        .build(make);
    sim.client_plan(
        0,
        ClientPlan::new((1..=8u64).map(|v| PlannedOp::after(DELTA / 2, Operation::Write(v)))),
    );
    for r in 1..n {
        sim.client_plan(
            r,
            ClientPlan::new((0..5).map(|_| PlannedOp::after(DELTA, Operation::<u64>::Read)))
                .starting_at((r as u64) * DELTA / 3),
        );
    }
    let report = sim.run().expect("simulation failed");
    assert!(
        report.all_live_ops_completed(),
        "liveness violated (n={n}, seed={seed})"
    );
    twobit::lincheck::check_swmr(&report.history)
        .unwrap_or_else(|e| panic!("atomicity violated (n={n}, seed={seed}): {e}"));
}

#[test]
fn twobit_atomic_across_schedules() {
    for n in [3usize, 5] {
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        for (di, delay) in delays().into_iter().enumerate() {
            for (ci, crashes) in crash_plans(n, cfg.t()).into_iter().enumerate() {
                exercise_swmr(n, (di * 10 + ci) as u64, delay, crashes, |id| {
                    TwoBitProcess::new(id, cfg, writer, 0u64)
                });
            }
        }
    }
}

#[test]
fn abd_atomic_across_schedules() {
    for n in [3usize, 5] {
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        for (di, delay) in delays().into_iter().enumerate() {
            for (ci, crashes) in crash_plans(n, cfg.t()).into_iter().enumerate() {
                exercise_swmr(n, (di * 10 + ci) as u64, delay, crashes, |id| {
                    AbdProcess::new(id, cfg, writer, 0u64)
                });
            }
        }
    }
}

#[test]
fn bounded_emulations_atomic_across_schedules() {
    for n in [3usize, 5] {
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        for (di, delay) in delays().into_iter().enumerate() {
            exercise_swmr(n, di as u64, delay, CrashPlan::none(), |id| {
                PhasedProcess::new(id, cfg, writer, 0u64, abd_bounded_profile(n))
            });
            exercise_swmr(n, 100 + di as u64, delays()[di], CrashPlan::none(), |id| {
                PhasedProcess::new(id, cfg, writer, 0u64, attiya_profile(n))
            });
        }
    }
}

#[test]
fn bounded_emulations_tolerate_crashes() {
    let n = 5;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    for crashes in crash_plans(n, cfg.t()) {
        exercise_swmr(
            n,
            7,
            DelayModel::Uniform { lo: 1, hi: DELTA },
            crashes.clone(),
            |id| PhasedProcess::new(id, cfg, writer, 0u64, abd_bounded_profile(n)),
        );
        exercise_swmr(
            n,
            8,
            DelayModel::Uniform { lo: 1, hi: DELTA },
            crashes,
            |id| PhasedProcess::new(id, cfg, writer, 0u64, attiya_profile(n)),
        );
    }
}

#[test]
fn mwmr_atomic_with_wing_gong() {
    // Multiple writers: the specialized SWMR checker does not apply, so the
    // Wing–Gong search judges the history.
    for seed in 0..10u64 {
        let n = 4;
        let cfg = SystemConfig::max_resilience(n);
        let mut sim = SimBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Uniform { lo: 1, hi: DELTA })
            .check_every(0)
            .build(|id| MwmrProcess::new(id, cfg, 0u64));
        // Every process writes its own distinct values and reads.
        for p in 0..n {
            let base = (p as u64 + 1) * 100;
            sim.client_plan(
                p,
                ClientPlan::ops(vec![
                    Operation::Write(base + 1),
                    Operation::Read,
                    Operation::Write(base + 2),
                    Operation::Read,
                ]),
            );
        }
        let report = sim.run().expect("mwmr sim failed");
        assert!(report.all_live_ops_completed());
        twobit::lincheck::check_wg(&report.history)
            .unwrap_or_else(|e| panic!("MWMR atomicity violated (seed {seed}): {e}"));
    }
}

#[test]
fn mwmr_atomic_with_crashes() {
    let n = 5;
    let cfg = SystemConfig::max_resilience(n);
    for seed in 0..5u64 {
        let mut sim = SimBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Uniform { lo: 1, hi: DELTA })
            .crashes(
                CrashPlan::none()
                    .with_crash(4, CrashPoint::AtTime(seed * DELTA + 1))
                    .with_crash(
                        3,
                        CrashPoint::OnStep {
                            step: 3,
                            sends_allowed: 2,
                        },
                    ),
            )
            .check_every(0)
            .build(|id| MwmrProcess::new(id, cfg, 0u64));
        for p in 0..3 {
            let base = (p as u64 + 1) * 10;
            sim.client_plan(
                p,
                ClientPlan::ops(vec![
                    Operation::Write(base + 1),
                    Operation::Read,
                    Operation::Write(base + 2),
                ]),
            );
        }
        let report = sim.run().expect("mwmr crash sim failed");
        assert!(report.all_live_ops_completed());
        twobit::lincheck::check_wg(&report.history)
            .unwrap_or_else(|e| panic!("MWMR-with-crashes violated (seed {seed}): {e}"));
    }
}

#[test]
fn byte_valued_register_works_end_to_end() {
    // Exercise a non-integer Payload through the whole stack.
    let n = 3;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let mut sim = SimBuilder::new(cfg)
        .seed(5)
        .build(|id| TwoBitProcess::new(id, cfg, writer, Vec::<u8>::new()));
    sim.client_plan(
        0,
        ClientPlan::ops((1..=4u8).map(|k| Operation::Write(vec![k; k as usize]))),
    );
    sim.client_plan(
        2,
        ClientPlan::ops((0..3).map(|_| Operation::<Vec<u8>>::Read)),
    );
    let report = sim.run().expect("byte register sim failed");
    assert!(report.all_live_ops_completed());
    twobit::lincheck::check_swmr(&report.history).expect("atomic");
    // Data bits accounted: values of length k contribute 8k bits.
    assert!(report.stats.data_bits() > 0);
}
