//! Property-based whole-protocol testing of the two-bit algorithm.
//!
//! proptest generates random system sizes, delay regimes, crash plans
//! (within `t`) and workloads; every generated scenario must satisfy, with
//! the full invariant battery armed:
//!
//! * all of Lemmas 2–5 and properties P1/P2 at every event;
//! * liveness: every operation of a live process completes;
//! * atomicity of the recorded history (checked post-hoc);
//! * determinism: re-running a scenario reproduces it exactly.

use proptest::prelude::*;
use twobit::core::{invariants, TwoBitOptions, TwoBitProcess};
use twobit::simnet::{ClientPlan, CrashPlan, CrashPoint, DelayModel, PlannedOp, SimBuilder};
use twobit::{Operation, ProcessId, SystemConfig};

const DELTA: u64 = 1_000;

#[derive(Clone, Debug)]
struct Scenario {
    n: usize,
    seed: u64,
    delay: DelayModel,
    writes: u64,
    reader_ops: Vec<(usize, u64, u64)>, // (proc, reads, start offset)
    crashes: Vec<(usize, CrashPoint)>,
    fast_read: bool,
}

fn arb_delay() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        Just(DelayModel::Fixed(DELTA)),
        (1u64..DELTA).prop_map(|hi| DelayModel::Uniform { lo: 1, hi }),
        (1u64..500, 1u64..8).prop_map(|(hi, mult)| DelayModel::Spiky {
            lo: 1,
            hi,
            spike_ppm: 250_000,
            spike_lo: DELTA,
            spike_hi: mult * DELTA,
        }),
    ]
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        2usize..=6,
        any::<u64>(),
        arb_delay(),
        1u64..10,
        any::<bool>(),
    )
        .prop_flat_map(|(n, seed, delay, writes, fast_read)| {
            let t = SystemConfig::max_resilience(n).t();
            let readers =
                prop::collection::vec((1usize..n.max(2), 0u64..6, 0u64..(8 * DELTA)), 0..n);
            // Crash at most t processes, never the writer (p0) — writer
            // crashes are exercised separately below.
            let crashes = prop::collection::vec(
                (
                    1usize..n.max(2),
                    prop_oneof![
                        (1u64..30 * DELTA).prop_map(CrashPoint::AtTime),
                        (1u64..15, 0usize..n).prop_map(|(step, sends)| {
                            CrashPoint::OnStep {
                                step,
                                sends_allowed: sends,
                            }
                        }),
                    ],
                ),
                0..=t,
            );
            (readers, crashes).prop_map(move |(reader_ops, crashes)| Scenario {
                n,
                seed,
                delay,
                writes,
                reader_ops,
                crashes,
                fast_read,
            })
        })
}

fn run_scenario(sc: &Scenario) -> (u64, u64, usize) {
    let cfg = SystemConfig::max_resilience(sc.n);
    let writer = ProcessId::new(0);
    let opts = TwoBitOptions {
        writer_fast_read: sc.fast_read,
        ..TwoBitOptions::default()
    };
    let mut plan = CrashPlan::none();
    let mut crashed: Vec<usize> = Vec::new();
    for (p, point) in &sc.crashes {
        if !crashed.contains(p) {
            crashed.push(*p);
        }
        plan = plan.with_crash(*p, *point);
    }
    let mut sim = SimBuilder::new(cfg)
        .seed(sc.seed)
        .delay(sc.delay)
        .crashes(plan)
        .check_every(2)
        .build(|id| TwoBitProcess::with_options(id, cfg, writer, 0u64, opts));
    for inv in invariants::all::<u64>(writer) {
        sim.add_invariant(inv);
    }
    sim.client_plan(
        0,
        ClientPlan::new((1..=sc.writes).map(|v| PlannedOp::after(DELTA / 3, Operation::Write(v)))),
    );
    let mut planned: Vec<usize> = Vec::new();
    for (p, reads, start) in &sc.reader_ops {
        if *p >= sc.n || planned.contains(p) {
            continue; // one plan per process (the engine enforces this)
        }
        planned.push(*p);
        sim.client_plan(
            *p,
            ClientPlan::new((0..*reads).map(|_| PlannedOp::after(DELTA / 2, Operation::Read)))
                .starting_at(*start),
        );
    }
    let report = sim.run().expect("invariant or protocol failure");
    assert!(
        report.all_live_ops_completed(),
        "liveness violated: {:?}",
        report.stalled_ops
    );
    twobit::lincheck::check_swmr(&report.history).expect("atomicity violated");
    (
        report.final_time,
        report.stats.total_sent(),
        report.history.completed().count(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_scenarios_safe_live_and_atomic(sc in arb_scenario()) {
        run_scenario(&sc);
    }

    #[test]
    fn scenarios_are_deterministic(sc in arb_scenario()) {
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        prop_assert_eq!(a, b);
    }

    /// Writer crashes mid-write: its last write is exempt, everything else
    /// must stay live and atomic.
    #[test]
    fn writer_crash_mid_write(
        seed in any::<u64>(),
        step in 1u64..8,
        sends in 0usize..5,
        reads in 1u64..6,
    ) {
        let n = 5;
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        let mut sim = SimBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Uniform { lo: 1, hi: DELTA })
            .crashes(CrashPlan::none().with_crash(
                0,
                CrashPoint::OnStep { step, sends_allowed: sends },
            ))
            .check_every(2)
            .build(|id| TwoBitProcess::new(id, cfg, writer, 0u64));
        for inv in invariants::all::<u64>(writer) {
            sim.add_invariant(inv);
        }
        sim.client_plan(0, ClientPlan::ops((1..=6u64).map(Operation::Write)));
        for r in 1..4usize {
            sim.client_plan(
                r,
                ClientPlan::new(
                    (0..reads).map(|_| PlannedOp::after(DELTA, Operation::<u64>::Read)),
                ),
            );
        }
        let report = sim.run().expect("run failed");
        prop_assert!(report.all_live_ops_completed());
        twobit::lincheck::check_swmr(&report.history).expect("atomicity");
    }
}
