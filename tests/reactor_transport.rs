//! Integration tests for the reactor transport: flat thread count under
//! many links, reconnect-and-resend accounting, and the two-node
//! listen/join deployment path.

use std::collections::HashMap;
use std::time::Duration;

use twobit::lincheck::{check_swmr, check_swmr_sharded};
use twobit::{
    Driver, FlushPolicy, ProcessId, ReactorClusterBuilder, ReactorNodeBuilder, RegisterId,
    SystemConfig, TwoBitProcess,
};

/// How many OS threads this process currently runs (from
/// `/proc/self/status`); `None` off-Linux.
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Satellite: the reactor's reason to exist. 16 processes × 64 shards is
/// 240 ordered links; the thread-per-link backend would burn 480 socket
/// threads, the reactor runs `procs + pool + dialer` regardless.
#[test]
fn thread_count_is_flat_in_the_link_count() {
    let cfg = SystemConfig::max_resilience(16);
    let writer = ProcessId::new(0);
    let before = os_thread_count();
    let mut node = ReactorClusterBuilder::new(cfg)
        .pool_size(4)
        .registers(64)
        .build_sharded(0u64, |_reg, id| TwoBitProcess::new(id, cfg, writer, 0u64))
        .expect("reactor cluster starts");
    assert_eq!(
        node.thread_count(),
        16 + 4 + 1,
        "procs + pool + dialer, not O(links)"
    );
    if let (Some(b), Some(a)) = (before, os_thread_count()) {
        // Real OS accounting, with slack for unrelated test-harness
        // threads: far under the 480 link threads the old backend needs.
        assert!(
            a.saturating_sub(b) < 60,
            "spawned {} threads for 240 links",
            a.saturating_sub(b)
        );
    }
    // The mesh actually works: traffic on a high shard and a low one.
    node.write(writer, RegisterId::ZERO, 1).unwrap();
    node.write(writer, RegisterId::new(63), 2).unwrap();
    assert_eq!(node.read(ProcessId::new(9), RegisterId::ZERO).unwrap(), 1);
    assert_eq!(
        node.read(ProcessId::new(15), RegisterId::new(63)).unwrap(),
        2
    );
    let (history, stats) = node.shutdown();
    check_swmr_sharded(&history).unwrap();
    assert_eq!(stats.links_abandoned(), 0);
    assert_eq!(
        stats.total_delivered() + stats.dropped_to_crashed() + stats.messages_abandoned(),
        stats.total_sent(),
        "flat-thread run reconciles exactly"
    );
}

/// Tentpole acceptance: 64 processes × 64 shards — 4032 ordered links —
/// on one box, still `procs + pool + dialer` threads, still atomic.
#[test]
fn sixty_four_procs_sixty_four_shards_on_one_box() {
    let cfg = SystemConfig::max_resilience(64);
    let writer = ProcessId::new(0);
    let mut node = ReactorClusterBuilder::new(cfg)
        .pool_size(4)
        .registers(64)
        // The mesh is 4032 dials through one serializing dialer; give
        // the first operation time to ride out the build-up.
        .op_timeout(Duration::from_secs(120))
        .drain_grace(Duration::from_secs(10))
        .build_sharded(0u64, |_reg, id| TwoBitProcess::new(id, cfg, writer, 0u64))
        .expect("64-process reactor cluster starts");
    assert_eq!(node.thread_count(), 64 + 4 + 1);
    node.write(writer, RegisterId::ZERO, 7).unwrap();
    assert_eq!(node.read(ProcessId::new(63), RegisterId::ZERO).unwrap(), 7);
    let (history, stats) = node.shutdown();
    check_swmr(history.shard(RegisterId::ZERO).unwrap()).unwrap();
    assert_eq!(stats.links_abandoned(), 0, "every link drained cleanly");
    assert_eq!(
        stats.total_delivered() + stats.dropped_to_crashed() + stats.messages_abandoned(),
        stats.total_sent(),
        "4032-link run reconciles exactly"
    );
}

/// Satellite: reconnect accounting. Sever every live socket mid-workload
/// (a *transient* failure — contrast `Driver::crash`): links must
/// recover via redial + resend, no operation may observe a duplicate
/// delivery, and the books must still balance exactly with
/// `reconnects >= 1`.
#[test]
fn severed_links_reconnect_without_double_delivery() {
    let cfg = SystemConfig::max_resilience(3);
    let writer = ProcessId::new(0);
    let reg = RegisterId::ZERO;
    let mut node = ReactorClusterBuilder::new(cfg)
        .pool_size(2)
        // Small frames: plenty of distinct sequence numbers in flight.
        .flush_policy(FlushPolicy::immediate())
        .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))
        .expect("reactor cluster starts");

    for round in 1..=30u64 {
        if round % 5 == 0 {
            // Kill every established socket while the next write's frames
            // race the failure notice.
            node.sever_links();
        }
        node.write(writer, reg, round).unwrap();
        let got = node
            .read(ProcessId::new((round % 2 + 1) as usize), reg)
            .unwrap();
        assert_eq!(got, round, "round {round} read the freshest write");
    }

    let (history, stats) = node.shutdown();
    let verdict = check_swmr(history.shard(reg).unwrap()).unwrap();
    assert_eq!(verdict.writes, 30, "every write completed exactly once");
    assert_eq!(verdict.reads_checked, 30);
    assert!(
        stats.reconnects() >= 1,
        "severed links recovered by reconnecting (got {})",
        stats.reconnects()
    );
    assert_eq!(
        stats.links_abandoned(),
        0,
        "transient failures recover; they do not abandon links"
    );
    assert!(
        stats.resend_buffer_high_water() >= 1,
        "sealed frames pass through the resend buffer"
    );
    // The tentpole invariant: resend epochs are counted exactly once —
    // replayed frames never double-count deliveries, deduped frames are
    // never delivered.
    assert_eq!(
        stats.total_delivered() + stats.dropped_to_crashed() + stats.messages_abandoned(),
        stats.total_sent(),
        "delivered + dropped + abandoned == sent across {} reconnects \
         ({} frames resent, {} deduped)",
        stats.reconnects(),
        stats.frames_resent(),
        stats.frames_deduped(),
    );
}

/// Tentpole: the cross-host deployment shape. Two nodes in one test
/// process, each hosting part of the configuration, wired by exchanging
/// bound addresses (port 0) exactly as two separate machines would.
#[test]
fn two_nodes_listen_join_and_interoperate() {
    let cfg = SystemConfig::max_resilience(3);
    let writer = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let p2 = ProcessId::new(2);
    let make = move |_reg: RegisterId, id: ProcessId| TwoBitProcess::new(id, cfg, writer, 0u64);

    // Bind both halves first — addresses must exist before either joins.
    let left = ReactorNodeBuilder::new(cfg)
        .host([0usize])
        .pool_size(1)
        .listen("127.0.0.1:0")
        .expect("left binds");
    let right = ReactorNodeBuilder::new(cfg)
        .host([1usize, 2])
        .pool_size(2)
        .listen("127.0.0.1:0")
        .expect("right binds");
    let left_addr = left.local_addr();
    let right_addr = right.local_addr();
    assert_ne!(left_addr.port(), 0, "the OS-assigned port is surfaced");
    assert_ne!(right_addr.port(), 0);

    let mut left = left
        .join(
            &HashMap::from([(p1, right_addr), (p2, right_addr)]),
            0u64,
            make,
        )
        .expect("left joins");
    let mut right = right
        .join(&HashMap::from([(writer, left_addr)]), 0u64, make)
        .expect("right joins");
    assert_eq!(left.thread_count(), 1 + 1 + 1);
    assert_eq!(right.thread_count(), 2 + 2 + 1);

    // Each process is driven through the node hosting it. A write needs a
    // majority (2 of 3), so completing one proves the cross-node links.
    for v in 1..=10u64 {
        left.write(writer, RegisterId::ZERO, v).unwrap();
        assert_eq!(right.read(p1, RegisterId::ZERO).unwrap(), v);
        assert_eq!(right.read(p2, RegisterId::ZERO).unwrap(), v);
    }

    // Quiesce (trailing acks settle), then shut down left first — the
    // realistic order where a peer disappears while the other drains.
    std::thread::sleep(Duration::from_millis(200));
    let (left_hist, left_stats) = left.shutdown();
    let (right_hist, right_stats) = right.shutdown();

    // Each node records the operations of *its* processes; together they
    // cover the workload.
    assert_eq!(left_hist.total_ops(), 10, "left: the writes");
    assert_eq!(right_hist.total_ops(), 20, "right: the reads");
    assert_eq!(left_stats.links_abandoned(), 0);
    assert_eq!(right_stats.links_abandoned(), 0);

    // Per-node books cannot balance (each node's sends are delivered on
    // the other), but the *deployment-wide* ledger must: every message
    // sent anywhere was delivered somewhere.
    let sent = left_stats.total_sent() + right_stats.total_sent();
    let delivered = left_stats.total_delivered() + right_stats.total_delivered();
    let dropped = left_stats.dropped_to_crashed() + right_stats.dropped_to_crashed();
    let abandoned = left_stats.messages_abandoned() + right_stats.messages_abandoned();
    assert_eq!(
        delivered + dropped + abandoned,
        sent,
        "summed across nodes: delivered + dropped + abandoned == sent"
    );
    assert!(left_stats.wire_bytes() > 0 && right_stats.wire_bytes() > 0);
}

/// `crash` stays `crash` on the reactor backend: a crashed process stops
/// answering (its frames are dropped, counted), distinct from the
/// transient sever-and-reconnect path.
#[test]
fn crash_semantics_are_preserved_alongside_reconnect() {
    let cfg = SystemConfig::max_resilience(3);
    let writer = ProcessId::new(0);
    let mut node = ReactorClusterBuilder::new(cfg)
        .pool_size(2)
        .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))
        .expect("reactor cluster starts");
    node.write(writer, RegisterId::ZERO, 1).unwrap();
    node.crash(ProcessId::new(2)).unwrap();
    // A majority (p0, p1) survives: the register stays live.
    node.write(writer, RegisterId::ZERO, 2).unwrap();
    assert_eq!(node.read(ProcessId::new(1), RegisterId::ZERO).unwrap(), 2);
    let (history, stats) = node.shutdown();
    check_swmr(history.shard(RegisterId::ZERO).unwrap()).unwrap();
    assert!(
        stats.dropped_to_crashed() > 0,
        "frames to the crashed process are dropped, not retried"
    );
    assert_eq!(
        stats.total_delivered() + stats.dropped_to_crashed() + stats.messages_abandoned(),
        stats.total_sent(),
    );
}

/// Satellite: the full fault gauntlet on one backend — a process crashes,
/// rejoins through the snapshot path, and crashes *again*, interleaved
/// with socket severs (transient failures the reconnect layer absorbs).
/// Crash, reconnect, and recover are three different events and the
/// accounting must keep them apart: resends never double-count, stale
/// fences are booked separately from crash drops, and the per-incarnation
/// ledgers sum exactly to `delivered + dropped + stale + abandoned ==
/// sent`.
#[test]
fn crash_recover_crash_interleaved_with_severs_reconciles() {
    let cfg = SystemConfig::max_resilience(3);
    let writer = ProcessId::new(0);
    let victim = ProcessId::new(2);
    let reg = RegisterId::ZERO;
    let mut node = ReactorClusterBuilder::new(cfg)
        .flush_policy(FlushPolicy::immediate())
        .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))
        .expect("reactor cluster starts");

    for round in 1..=24u64 {
        match round {
            4 | 14 | 20 => node.sever_links(),
            8 => node.crash(victim).unwrap(),
            12 => {
                node.recover(victim).unwrap();
                // The rejoined process serves through the protocol again.
                assert_eq!(node.read(victim, reg).unwrap(), 11);
            }
            16 => node.crash(victim).unwrap(),
            _ => {}
        }
        node.write(writer, reg, round).unwrap();
        assert_eq!(node.read(ProcessId::new(1), reg).unwrap(), round);
    }

    let (history, stats) = node.shutdown();
    let shard = history.shard(reg).unwrap();
    let verdict = check_swmr(shard).unwrap();
    assert_eq!(verdict.writes, 24, "every write completed exactly once");
    assert_eq!(
        shard.recoveries.len(),
        1,
        "one completed rejoin on the record"
    );
    assert_eq!(shard.recoveries[0].proc, victim);
    assert_eq!(shard.recoveries[0].incarnation, 1);

    assert!(stats.reconnects() >= 1, "severs forced redials");
    assert_eq!(stats.recoveries(), 1);
    assert!(
        stats.snapshot_frames() >= 1,
        "the rejoin shipped a snapshot"
    );
    assert!(
        stats.dropped_to_crashed() > 0,
        "traffic to the crashed process was dropped"
    );
    assert_eq!(
        stats.total_delivered()
            + stats.dropped_to_crashed()
            + stats.dropped_stale()
            + stats.messages_abandoned(),
        stats.total_sent(),
        "delivered + dropped + stale + abandoned == sent"
    );
    // Per-incarnation ledgers: epoch 0 (initial) and epoch 1 (post-rejoin)
    // partition the same totals.
    let ledgers = stats.incarnation_ledgers();
    assert_eq!(ledgers.len(), 2, "one ledger per incarnation epoch");
    assert_eq!(
        ledgers.iter().map(|l| l.sent).sum::<u64>(),
        stats.total_sent()
    );
    assert_eq!(
        ledgers.iter().map(|l| l.delivered).sum::<u64>(),
        stats.total_delivered()
    );
    assert!(
        ledgers[1].sent > 0,
        "the post-rejoin epoch carried real traffic"
    );
}
