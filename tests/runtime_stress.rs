//! Live-runtime stress: the same protocols on OS threads with chaos links,
//! concurrent clients and crash injection; histories re-checked post hoc.

use std::time::Duration;

use twobit::baselines::AbdProcess;
use twobit::core::TwoBitProcess;
use twobit::simnet::DelayModel;
use twobit::{ClusterBuilder, ProcessId, SystemConfig};

fn chaos() -> DelayModel {
    DelayModel::Spiky {
        lo: 10,
        hi: 150,
        spike_ppm: 150_000,
        spike_lo: 300,
        spike_hi: 1_500,
    }
}

#[test]
fn twobit_concurrent_clients_stay_atomic() {
    let n = 5;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let cluster = ClusterBuilder::new(cfg)
        .seed(11)
        .delay(chaos())
        .op_timeout(Duration::from_secs(30))
        .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))
        .unwrap();

    std::thread::scope(|s| {
        let mut w = cluster.client(0);
        s.spawn(move || {
            for v in 1..=40u64 {
                w.write(v).expect("write");
            }
        });
        for r in 1..n {
            let mut c = cluster.client(r);
            s.spawn(move || {
                let mut last = 0u64;
                for _ in 0..40 {
                    let v = c.read().expect("read");
                    assert!(v >= last, "per-client monotonicity: {v} < {last}");
                    last = v;
                }
            });
        }
    });

    let (history, stats) = cluster.shutdown();
    assert_eq!(history.completed().count(), 40 + 4 * 40);
    twobit::lincheck::check_swmr(&history).expect("atomic");
    // Two-bit wire property holds on the live path too.
    assert_eq!(stats.max_msg_control_bits(), 2);
}

#[test]
fn abd_concurrent_clients_stay_atomic() {
    let n = 4;
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let cluster = ClusterBuilder::new(cfg)
        .seed(5)
        .delay(chaos())
        .op_timeout(Duration::from_secs(30))
        .build(0u64, |id| AbdProcess::new(id, cfg, writer, 0u64))
        .unwrap();
    std::thread::scope(|s| {
        let mut w = cluster.client(0);
        s.spawn(move || {
            for v in 1..=25u64 {
                w.write(v).expect("write");
            }
        });
        for r in 1..n {
            let mut c = cluster.client(r);
            s.spawn(move || {
                for _ in 0..25 {
                    c.read().expect("read");
                }
            });
        }
    });
    let (history, _) = cluster.shutdown();
    twobit::lincheck::check_swmr(&history).expect("atomic");
}

#[test]
fn crash_during_concurrent_traffic() {
    let n = 5; // t = 2
    let cfg = SystemConfig::max_resilience(n);
    let writer = ProcessId::new(0);
    let cluster = ClusterBuilder::new(cfg)
        .seed(9)
        .delay(chaos())
        .op_timeout(Duration::from_secs(30))
        .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))
        .unwrap();
    std::thread::scope(|s| {
        let mut w = cluster.client(0);
        s.spawn(move || {
            for v in 1..=30u64 {
                w.write(v).expect("write");
            }
        });
        for r in 1..=2usize {
            let mut c = cluster.client(r);
            s.spawn(move || {
                for _ in 0..30 {
                    c.read().expect("read");
                }
            });
        }
        let cl = &cluster;
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            cl.crash(3).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            cl.crash(4).unwrap();
        });
    });
    let (history, _) = cluster.shutdown();
    twobit::lincheck::check_swmr(&history).expect("atomic with 2 crashes");
}

#[test]
fn per_client_reads_never_regress_under_load() {
    // A sharper client-visible corollary of atomicity: within one client,
    // successive reads are monotone in write order. Run many short rounds
    // to shake out races.
    for seed in 0..4u64 {
        let n = 3;
        let cfg = SystemConfig::max_resilience(n);
        let writer = ProcessId::new(0);
        let cluster = ClusterBuilder::new(cfg)
            .seed(seed)
            .delay(DelayModel::Uniform { lo: 5, hi: 100 })
            .build(0u64, |id| TwoBitProcess::new(id, cfg, writer, 0u64))
            .unwrap();
        std::thread::scope(|s| {
            let mut w = cluster.client(0);
            s.spawn(move || {
                for v in 1..=15u64 {
                    w.write(v).expect("write");
                }
            });
            let mut c = cluster.client(1);
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..30 {
                    let v = c.read().expect("read");
                    assert!(v >= last);
                    last = v;
                }
            });
        });
        let (history, _) = cluster.shutdown();
        twobit::lincheck::check_swmr(&history).expect("atomic");
    }
}
