//! Vendored minimal stand-in for the `rand` crate (offline build).
//!
//! Provides the exact subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges. The generator is SplitMix64 — statistically fine for simulation
//! seeding and fully deterministic per seed (which is what the simulator
//! actually relies on). It is NOT the real StdRng stream and is NOT
//! cryptographically secure.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of type `T` (only `bool` and the integer widths the
    /// workspace uses are supported).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` without modulo bias worth worrying about
/// for simulation purposes (span ≪ 2⁶⁴ everywhere in this workspace).
fn below<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    (u128::from(rng.next_u64())) % span
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&y));
            let z: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&z));
        }
    }

    #[test]
    fn inclusive_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..2_000 {
            match rng.gen_range(0..=1u32) {
                0 => lo = true,
                _ => hi = true,
            }
        }
        assert!(lo && hi);
    }
}
