//! Vendored minimal stand-in for `parking_lot` (offline build).
//!
//! [`Mutex`] wraps `std::sync::Mutex` with parking_lot's non-poisoning
//! `lock()` signature (a poisoned std lock is recovered transparently —
//! matching parking_lot semantics, where panicking while holding a lock does
//! not poison it).

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
