//! Vendored minimal stand-in for `crossbeam` (offline build).
//!
//! Only the [`channel`] module is provided, backed by `std::sync::mpsc`.
//! Semantic deltas from real crossbeam that matter here:
//!
//! * [`channel::bounded`] does not apply backpressure (it is an unbounded
//!   queue). The workspace only uses `bounded(1)` for one-shot reply slots,
//!   where this is indistinguishable.
//! * `Receiver` is not `Clone` (single-consumer), which matches every usage
//!   in the tree.

/// MPSC channels mirroring the used subset of `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Mutex, PoisonError};
    use std::time::Duration;

    /// Sending half of a channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of a channel.
    ///
    /// Wrapped in a mutex because crossbeam's receiver is `Sync` while
    /// `std::sync::mpsc`'s is not; receives serialize, which matches the
    /// single-consumer usage throughout the workspace.
    pub struct Receiver<T>(Mutex<mpsc::Receiver<T>>);

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Errors returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel closes.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over incoming messages until disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Mutex::new(rx)))
    }

    /// Creates a "bounded" channel — see the module docs: no backpressure
    /// is applied; capacity is advisory only.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
