//! Vendored minimal stand-in for the `serde` facade.
//!
//! The workspace builds offline and never serializes through serde (reports
//! are rendered by hand in `twobit-harness`), but protocol types carry
//! `#[derive(Serialize, Deserialize)]` so downstream users with the real
//! serde could swap this out. Here the traits are empty markers and the
//! derives are no-ops.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
