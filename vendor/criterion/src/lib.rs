//! Vendored minimal stand-in for `criterion` (offline build).
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `BatchSize`, and the `criterion_group!`
//! / `criterion_main!` macros — with a simple adaptive timing loop instead
//! of criterion's statistical machinery. Each benchmark prints one
//! `bench <group>/<id> ... <time>/iter` line to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's is equivalent here).
pub use std::hint::black_box;

/// Target measurement time per benchmark point.
const TARGET: Duration = Duration::from_millis(20);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench("", &id.into(), f);
        self
    }
}

/// A named collection of benchmark points.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub sizes samples adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub uses a fixed target time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark point in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&self.name, &id.into(), f);
        self
    }

    /// Runs one parameterized benchmark point in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&self.name, &id.into(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark point.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A point named `function_name` at parameter `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A point identified by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// How `iter_batched` amortizes setup (ignored by the stub's timing loop).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by `iter*`.
    ns_per_iter: f64,
    /// Iterations actually executed.
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warmup call, then scale the batch to the time budget.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = t1.elapsed();
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let t1 = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        let total = t1.elapsed();
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn run_bench(group: &str, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        ns_per_iter: 0.0,
        iters: 0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{}/{}", group, id.id)
    };
    println!(
        "bench {label:60} {:>12.1} ns/iter ({} iters)",
        b.ns_per_iter, b.iters
    );
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
