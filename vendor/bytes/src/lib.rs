//! Vendored minimal stand-in for the `bytes` crate (offline build).
//!
//! [`Bytes`] is a cheaply-clonable immutable byte buffer, [`BytesMut`] a
//! growable builder, and [`BufMut`] the writing trait — just enough for the
//! two-bit wire codec. No zero-copy slicing or split operations.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-clonable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

/// Growable byte buffer builder.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Byte-writing operations (the used subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.0.push(b);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.0.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        assert_eq!(b.len(), 3);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.clone().as_ref(), &[1, 2, 3]);
        assert!(!frozen.is_empty());
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn empty_roundtrip() {
        assert!(BytesMut::new().freeze().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[]).len(), 0);
    }
}
