//! Vendored minimal stand-in for the `bytes` crate (offline build).
//!
//! [`Bytes`] is a cheaply-clonable immutable byte buffer with **zero-copy
//! slicing**: a `Bytes` is a `(owner, offset, len)` view over a shared
//! allocation, so [`Bytes::slice`] hands out sub-views without copying and
//! [`Bytes::from_owner`] turns any byte-backed owner (a pooled buffer, a
//! memory-mapped file stand-in) into a `Bytes` whose allocation is released
//! — or returned to its pool — when the last view drops. [`BytesMut`] is a
//! growable builder and [`BufMut`] the writing trait — the subset the
//! two-bit wire codec uses.

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply-clonable immutable byte buffer: a shared-ownership view
/// (`offset..offset + len`) over one allocation. Clones and
/// [slices](Bytes::slice) share the allocation; equality and hashing are
/// content-based, like the real `bytes` crate.
#[derive(Clone)]
pub struct Bytes {
    owner: Arc<dyn AsRef<[u8]> + Send + Sync>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer (no allocation is shared).
    pub fn new() -> Self {
        Bytes {
            owner: Arc::new([0u8; 0]),
            offset: 0,
            len: 0,
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Wraps an arbitrary byte-backed owner without copying. The owner is
    /// dropped when the last `Bytes` viewing it drops — the hook pooled
    /// buffers use to return themselves to their pool.
    pub fn from_owner<T>(owner: T) -> Self
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let len = owner.as_ref().len();
        Bytes {
            owner: Arc::new(owner),
            offset: 0,
            len,
        }
    }

    /// Returns a zero-copy sub-view sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted, matching the
    /// real crate's contract.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of Bytes of length {}",
            self.len
        );
        Bytes {
            owner: Arc::clone(&self.owner),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pointer to the first byte of this view (inside the shared
    /// allocation) — what the zero-copy property tests range-check.
    pub fn as_ptr(&self) -> *const u8 {
        self.as_slice().as_ptr()
    }

    fn as_slice(&self) -> &[u8] {
        &(*self.owner).as_ref()[self.offset..self.offset + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            owner: Arc::new(v),
            offset: 0,
            len,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// Growable byte buffer builder.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts to an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Byte-writing operations (the used subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.0.push(b);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.0.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        assert_eq!(b.len(), 3);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.clone().as_ref(), &[1, 2, 3]);
        assert!(!frozen.is_empty());
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn empty_roundtrip() {
        assert!(BytesMut::new().freeze().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[]).len(), 0);
        assert!(Bytes::default().is_empty());
    }

    #[test]
    fn slicing_is_zero_copy() {
        let whole = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = whole.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        // The sub-view points into the original allocation.
        let base = whole.as_ptr() as usize;
        assert_eq!(mid.as_ptr() as usize, base + 2);
        // Nested slices stay inside the same allocation.
        let inner = mid.slice(1..=2);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(inner.as_ptr() as usize, base + 3);
        // Unbounded ranges work.
        assert_eq!(&mid.slice(..)[..], &[2, 3, 4, 5]);
        assert_eq!(&mid.slice(2..)[..], &[4, 5]);
        assert_eq!(&mid.slice(..1)[..], &[2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn equality_and_hash_are_content_based() {
        use std::collections::hash_map::DefaultHasher;
        let a = Bytes::from(vec![9, 9, 1, 2, 9]).slice(2..4);
        let b = Bytes::copy_from_slice(&[1, 2]);
        assert_eq!(a, b);
        let hash = |x: &Bytes| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        assert_ne!(a, Bytes::copy_from_slice(&[1, 3]));
    }

    #[test]
    fn from_owner_drops_owner_with_the_last_view() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc as StdArc;

        struct Tracked(Vec<u8>, StdArc<AtomicBool>);
        impl AsRef<[u8]> for Tracked {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.1.store(true, Ordering::SeqCst);
            }
        }

        let dropped = StdArc::new(AtomicBool::new(false));
        let b = Bytes::from_owner(Tracked(vec![1, 2, 3], StdArc::clone(&dropped)));
        let sub = b.slice(1..);
        drop(b);
        assert!(!dropped.load(Ordering::SeqCst), "a view is still alive");
        assert_eq!(&sub[..], &[2, 3]);
        drop(sub);
        assert!(
            dropped.load(Ordering::SeqCst),
            "last view releases the owner"
        );
    }
}
