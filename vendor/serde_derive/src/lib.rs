//! No-op stand-ins for serde's derive macros.
//!
//! This workspace builds offline; serialization is never exercised (histories
//! and reports are rendered by hand), so the derives only need to *exist* for
//! the `#[derive(Serialize, Deserialize)]` attributes in the tree to compile.
//! Each derive expands to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
