//! No-op stand-ins for serde's derive macros.
//!
//! This workspace builds offline; serialization is never exercised (histories
//! and reports are rendered by hand), so the derives only need to *exist* for
//! the `#[derive(Serialize, Deserialize)]` attributes in the tree to compile.
//! Each derive expands to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`. Registers the
/// `serde` helper attribute so field annotations like `#[serde(default)]`
/// parse, exactly as the real derive does.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`. Registers the
/// `serde` helper attribute so field annotations like `#[serde(default)]`
/// parse, exactly as the real derive does.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
