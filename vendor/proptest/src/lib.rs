//! Vendored minimal stand-in for `proptest` (offline build).
//!
//! Implements the subset of the proptest API used by this workspace's
//! property tests: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! integer-range and `any::<T>()` strategies, tuple and
//! [`collection::vec`] composition, [`prop_oneof!`], [`Just`], the
//! [`proptest!`] test macro and `prop_assert*` assertions.
//!
//! Differences from real proptest, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case reports its generated inputs via the
//!   panic message (cases are deterministic per test name, so a failure is
//!   reproducible by rerunning the test).
//! * **Uniform `prop_oneof!`** (no weighted arms — none are used here).
//! * Generation is driven by the vendored SplitMix64 `rand` stub, seeded
//!   from the test's module path, so runs are fully deterministic.

use rand::rngs::StdRng;

/// Strategy combinators and the [`Strategy`] trait.
pub mod strategy {
    use super::StdRng;
    use rand::{Rng, RngCore};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng: &mut StdRng| s.generate(rng)))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Strategy for "any value of `T`" — see [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    /// Full-domain strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Length distribution for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                lo: len,
                hi_inclusive: len,
            }
        }
    }

    /// Strategy generating vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration ([`proptest!`]'s `#![proptest_config(..)]`).
pub mod test_runner {
    use super::StdRng;
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};

    /// Number of cases to run per property.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Cases per property test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG for a named test (seeded from the name).
    pub fn rng_for(name: &str) -> StdRng {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

pub use test_runner::Config as ProptestConfig;

/// The namespace alias used as `prop::collection::vec` etc.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Everything needed by `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{:?}` == `{:?}`", l, r
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!(
                        "{} (`{:?}` vs `{:?}`)", format!($($fmt)+), l, r
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        l, r
                    ));
                }
            }
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `Config::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let dbg_inputs = format!(
                        concat!($(stringify!($arg), "={:?} ",)+),
                        $(&$arg),+
                    );
                    let result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("case {case} failed: {e}\ninputs: {dbg_inputs}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u64> {
        prop_oneof![Just(5u64), 1u64..3]
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 1u64..10, y in 0usize..=3) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_maps(x in small().prop_map(|v| v * 2)) {
            prop_assert!(x == 10 || x == 2 || x == 4, "unexpected {}", x);
        }

        #[test]
        fn flat_map_composes(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u32..2, n..=n))) {
            prop_assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let s = 0u64..1_000_000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
